"""Observability: metrics registry, tracer, exporters."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    TID_NET,
    TID_REPLICATION,
    LatencyRecorder,
    MetricsRegistry,
    Observability,
    Tracer,
    chrome_trace_events,
    phase_report,
    write_chrome_trace,
    write_metrics,
    write_trace_jsonl,
)
from repro.sim.kernel import Simulator

# ---------------------------------------------------------------- registry


def test_counter_idempotent_lookup():
    registry = MetricsRegistry()
    a = registry.counter("x.y", node=1)
    b = registry.counter("x.y", node=1)
    assert a is b
    a.inc()
    a.inc(4)
    assert b.value == 5
    # Different labels -> different instrument.
    assert registry.counter("x.y", node=2) is not a
    assert registry.counter_total("x.y") == 5


def test_gauge_and_histogram():
    registry = MetricsRegistry()
    g = registry.gauge("depth")
    g.set(7.5)
    assert registry.gauge("depth").value == 7.5
    h = registry.histogram("lat_us", node=0)
    h.record(10.0)
    h.record(20.0)
    assert h.count == 2
    assert h.mean() == pytest.approx(15.0)


def test_counter_group_is_mapping():
    registry = MetricsRegistry()
    group = registry.group("commit", node=3)
    group.inc("committed")
    group.inc("committed", 2)
    group.inc("applied")
    assert group["committed"] == 3
    assert group.get("applied") == 1
    assert group.get("missing", 0) == 0
    assert dict(group) == {"committed": 3, "applied": 1}
    assert group.as_dict() == {"applied": 1, "committed": 3}
    # The group writes through to qualified registry counters.
    assert registry.counter("commit.committed", node=3).value == 3


def test_empty_latency_summary_has_full_key_set():
    summary = LatencyRecorder().summary()
    assert summary == {"count": 0, "mean_us": 0.0, "p50_us": 0.0,
                       "p99_us": 0.0, "p999_us": 0.0, "max_us": 0.0}


def test_snapshot_is_deterministic_and_jsonable():
    def build():
        registry = MetricsRegistry()
        registry.counter("b", node=1).inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(3.0)
        registry.meter("m").record(100.0)
        return json.dumps(registry.snapshot(), sort_keys=True)

    assert build() == build()
    snap = json.loads(build())
    assert snap["counters"] == {"a": 2, "b{node=1}": 1}


# ------------------------------------------------------------------ tracer


def test_null_tracer_is_falsy_noop():
    assert not NULL_TRACER
    assert NULL_TRACER.begin("x", pid=0) is None
    NULL_TRACER.end(None)
    NULL_TRACER.instant("x", pid=0)
    assert Observability().tracer is NULL_TRACER


def test_tracer_records_sim_time_spans():
    sim = Simulator()
    tracer = Tracer(sim)
    assert tracer
    span = tracer.begin("txn", pid=2, tid=1, cat="txn", kind="write")
    sim.call_after(10.0, lambda: None)
    sim.run()
    tracer.end(span, committed=True)
    tracer.instant("net.send", pid=2, dst=1)
    assert span.start_us == 0.0 and span.end_us == 10.0
    assert span.duration_us == 10.0
    assert span.args == {"kind": "write", "committed": True}
    assert tracer.spans_named("txn") == [span]
    assert tracer.durations_by_name() == {"txn": [10.0]}
    assert tracer.instants[0].tid == TID_NET


# --------------------------------------------------------------- exporters


def _sample_tracer():
    sim = Simulator()
    tracer = Tracer(sim)
    t = tracer.begin("txn", pid=0, tid=0, cat="txn")
    c = tracer.begin("commit_replicate", pid=0, tid=TID_REPLICATION,
                     cat="commit")
    sim.call_after(5.0, lambda: None)
    sim.run()
    tracer.end(t)
    tracer.end(c, acked=2)
    tracer.instant("net.send", pid=0, dst=1)
    return tracer


def test_chrome_trace_event_shape():
    events = chrome_trace_events(_sample_tracer())
    phases = {e["ph"] for e in events}
    assert phases == {"M", "X", "i"}
    spans = [e for e in events if e["ph"] == "X"]
    assert {s["name"] for s in spans} == {"txn", "commit_replicate"}
    for s in spans:
        assert s["ts"] == 0.0 and s["dur"] == 5.0
    thread_names = {e["args"]["name"] for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"}
    assert thread_names == {"app.0", "replication.0", "net"}


def test_write_chrome_trace_deterministic(tmp_path):
    p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
    write_chrome_trace(_sample_tracer(), str(p1))
    write_chrome_trace(_sample_tracer(), str(p2))
    assert p1.read_bytes() == p2.read_bytes()
    doc = json.loads(p1.read_text())
    assert isinstance(doc["traceEvents"], list)


def test_write_trace_jsonl(tmp_path):
    path = tmp_path / "t.jsonl"
    write_trace_jsonl(_sample_tracer(), str(path))
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert {r["type"] for r in records} == {"span", "instant"}
    starts = [r["start_us"] for r in records]
    assert starts == sorted(starts)


def test_phase_report_lists_phases():
    report = phase_report(_sample_tracer())
    assert "commit_replicate" in report and "txn" in report
    assert "p99_us" in report
    assert phase_report(Tracer(Simulator())) \
        == "phase breakdown: (no spans recorded)"


def test_write_metrics(tmp_path):
    registry = MetricsRegistry()
    registry.counter("net.sent").inc(9)
    path = tmp_path / "m.json"
    write_metrics(registry, str(path))
    assert json.loads(path.read_text())["counters"]["net.sent"] == 9


# ------------------------------------------------------------- integration


def _traced_run(seed=5):
    from repro.harness.zeus_cluster import ZeusCluster
    from tests.conftest import make_catalog

    obs = Observability(tracer=Tracer())
    cluster = ZeusCluster(3, catalog=make_catalog(), seed=seed, obs=obs)
    cluster.load()
    api = cluster.handles[0].api

    def app():
        for oid in range(8):
            yield from api.execute_write(0, [oid])

    cluster.spawn_app(0, 0, app())
    cluster.run(until=200_000)
    return cluster, obs


def test_cluster_trace_has_all_span_kinds():
    _cluster, obs = _traced_run()
    names = {s.name for s in obs.tracer.spans}
    assert {"txn", "own_acquire", "commit_replicate"} <= names
    # Remote acquires annotate grant outcome.
    own = obs.tracer.spans_named("own_acquire")
    assert own and all("granted" in (s.args or {}) for s in own)
    # Wire-level instants flow from the network layer.
    assert any(e.name == "net.send" for e in obs.tracer.instants)
    assert any(e.name == "net.deliver" for e in obs.tracer.instants)


def test_cluster_trace_deterministic(tmp_path):
    p1, p2 = tmp_path / "r1.json", tmp_path / "r2.json"
    write_chrome_trace(_traced_run()[1].tracer, str(p1))
    write_chrome_trace(_traced_run()[1].tracer, str(p2))
    assert p1.read_bytes() == p2.read_bytes()


def test_disabled_tracer_runs_without_spans():
    from repro.harness.zeus_cluster import ZeusCluster
    from tests.conftest import make_catalog

    cluster = ZeusCluster(3, catalog=make_catalog(), seed=5)
    cluster.load()
    api = cluster.handles[0].api

    def app():
        for oid in range(4):
            yield from api.execute_write(0, [oid])

    cluster.spawn_app(0, 0, app())
    cluster.run(until=100_000)
    assert cluster.obs.tracer is NULL_TRACER
    assert cluster.total_committed() >= 4
    # Metrics stay live even with tracing off.
    snap = cluster.obs.registry.snapshot()
    assert snap["counters"]["net.sent"] > 0


def test_sim_stats_gauges_updated():
    cluster, obs = _traced_run()
    registry = obs.registry
    assert registry.gauge("sim.events_executed").value > 0
    assert registry.gauge("sim.now_us").value > 0
