"""Perf-trajectory bench harness: determinism, profiler neutrality,
baseline comparison, and the ``repro bench`` CLI."""

import json

import pytest

from repro.bench import (
    SCENARIOS,
    bench_scenario,
    compare_docs,
    deterministic_view,
    get_scenario,
    write_bench,
)
from repro.bench.compare import compare_against, load_baseline
from repro.bench.scenarios import ScenarioOutcome
from repro.harness.runner import COMMANDS, main
from repro.obs import NULL_PROFILER, HostProfiler, Observability, peak_rss_kb

SCALE = 0.12  # keep bench cells test-sized


# ------------------------------------------------------------------ registry


def test_registry_metadata():
    assert set(SCENARIOS) == {"smallbank", "tatp", "voter_migration",
                              "chaos2", "elastic"}
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name
        assert scenario.description
        assert isinstance(scenario.config, dict) and scenario.config


def test_get_scenario_unknown():
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("nope")


# ------------------------------------------------------- profiler neutrality


@pytest.fixture(scope="module")
def smallbank_runs():
    """One profiled and one plain run of the same smallbank cell."""
    scenario = get_scenario("smallbank")
    profiler = HostProfiler()
    profiler.start()
    profiled = scenario.run(5, SCALE, Observability(profiler=profiler))
    profiler.stop()
    plain = scenario.run(5, SCALE, Observability())
    return profiled, plain, profiler


def test_profiler_does_not_change_outcomes(smallbank_runs):
    profiled, plain, _ = smallbank_runs
    assert profiled.digest() == plain.digest()
    assert profiled.committed == plain.committed
    assert profiled.aborted == plain.aborted
    assert profiled.events_executed == plain.events_executed
    assert profiled.sim_now_us == plain.sim_now_us
    assert profiled.extra == plain.extra


def test_profiler_report_attributes_host_time(smallbank_runs):
    profiled, _, profiler = smallbank_runs
    report = profiler.report()
    # Every simulator event was classified somewhere.
    assert report["events_profiled"] == profiled.events_executed
    assert sum(s["events"] for s in report["subsystems"].values()) \
        == profiled.events_executed
    # The workload generators and the protocol layers all burned time.
    assert report["subsystems"]["app"]["ns"] > 0
    assert report["subsystems"]["net"]["ns"] > 0
    assert report["subsystems"]["cluster"]["ns"] > 0
    # Handler breakdown covers the commit pipeline's message kinds.
    assert report["handlers"]["rc.inv"]["events"] > 0
    assert report["messages"]["rc.ack"] > 0
    # Residual (heap pops + dispatch) is non-negative and wall >= sum.
    assert report["kernel"]["dispatch_residual_ns"] >= 0
    assert report["wall_s"] > 0
    assert report["peak_rss_kb"] == peak_rss_kb() > 0


def test_null_profiler_is_falsy_and_inert():
    assert not NULL_PROFILER
    assert NULL_PROFILER.enabled is False
    assert bool(HostProfiler()) is True
    # All hooks are no-ops.
    NULL_PROFILER.start()
    NULL_PROFILER.event(len, 5)
    NULL_PROFILER.handler("x", 5)
    NULL_PROFILER.message("x")
    NULL_PROFILER.count("x")
    NULL_PROFILER.stop()


def test_kernel_skips_profiling_when_unset():
    # A cluster built with default Observability installs no profiler.
    from repro.harness.zeus_cluster import ZeusCluster
    cluster = ZeusCluster(3)
    assert cluster.sim._profiler is None


# ------------------------------------------------------- bench determinism


@pytest.fixture(scope="module")
def bench_doc():
    return bench_scenario("smallbank", seed=3, scale=SCALE)


def test_bench_schema(bench_doc):
    doc = bench_doc
    assert doc["schema_version"] == 1
    assert doc["scenario"] == "smallbank"
    assert doc["seed"] == 3 and doc["scale"] == SCALE
    assert set(doc["sim"]) >= {"committed", "aborted", "events_executed",
                               "sim_now_us", "digest"}
    assert set(doc["host"]) >= {"wall_s", "events_per_sec", "txns_per_sec",
                                "peak_rss_kb", "subsystems", "handlers",
                                "messages", "counts", "kernel"}
    assert set(doc["env"]) == {"python", "implementation", "platform",
                               "machine"}
    oo = doc["obs_overhead"]
    assert set(oo) == {"plain_wall_s", "obs_wall_s", "delta_s", "delta_pct",
                       "locality_wall_s", "locality_delta_s",
                       "locality_delta_pct", "digest_match"}
    # Observation must not change simulation outcomes.
    assert oo["digest_match"] is True


def test_bench_same_seed_deterministic(bench_doc):
    again = bench_scenario("smallbank", seed=3, scale=SCALE)
    assert deterministic_view(bench_doc) == deterministic_view(again)
    # ...while a different seed lands on a different digest.
    other = bench_scenario("smallbank", seed=4, scale=SCALE,
                           measure_overhead=False)
    assert other["sim"]["digest"] != bench_doc["sim"]["digest"]


def test_deterministic_view_drops_host_and_env(bench_doc):
    view = deterministic_view(bench_doc)
    assert "host" not in view and "env" not in view
    assert view["obs_overhead"] == {"digest_match": True}


def test_outcome_digest_ignores_event_count():
    # History recording adds bookkeeping events; digests must not care.
    a = ScenarioOutcome(10, 2, 1000, 500.0, {"x": 1})
    b = ScenarioOutcome(10, 2, 1234, 500.0, {"x": 1})
    c = ScenarioOutcome(11, 2, 1000, 500.0, {"x": 1})
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()


# ------------------------------------------------------------------ compare


def _doc(evps, txps, digest="abc", wall=1.0):
    return {
        "schema_version": 1, "scenario": "smallbank",
        "sim": {"digest": digest},
        "host": {"events_per_sec": evps, "txns_per_sec": txps,
                 "wall_s": wall, "peak_rss_kb": 10_000},
    }


def test_compare_ok_within_threshold():
    result = compare_docs(_doc(100_000, 5_000), _doc(80_000, 4_000),
                          threshold=0.5)
    assert result.ok
    assert all(v in ("ok", "(report-only)") for _, _, _, v in result.rows)


def test_compare_regression_fails():
    result = compare_docs(_doc(100_000, 5_000), _doc(30_000, 5_000),
                          threshold=0.5)
    assert not result.ok
    verdicts = {m: v for m, _, _, v in result.rows}
    assert verdicts["events_per_sec"] == "REGRESSION"
    assert verdicts["txns_per_sec"] == "ok"
    assert "REGRESSION" in result.table()


def test_compare_speedup_reported_not_failed():
    result = compare_docs(_doc(100_000, 5_000), _doc(300_000, 20_000),
                          threshold=0.5)
    assert result.ok
    verdicts = {m: v for m, _, _, v in result.rows}
    assert verdicts["events_per_sec"] == "speedup"


def test_compare_digest_mismatch_noted_not_failed():
    result = compare_docs(_doc(100_000, 5_000, digest="aaa"),
                          _doc(90_000, 4_500, digest="bbb"))
    assert result.ok
    assert any("digest changed" in n for n in result.notes)


def test_compare_threshold_is_configurable():
    base, cur = _doc(100_000, 5_000), _doc(85_000, 4_250)
    assert compare_docs(base, cur, threshold=0.2).ok
    assert not compare_docs(base, cur, threshold=0.1).ok


def test_load_baseline_file_and_missing(tmp_path):
    doc = _doc(1.0, 1.0)
    path = tmp_path / "BENCH_smallbank.json"
    path.write_text(json.dumps(doc))
    assert load_baseline(str(path), "smallbank") == doc
    with pytest.raises(FileNotFoundError):
        load_baseline(str(tmp_path / "nope.json"), "smallbank")
    assert compare_against(str(tmp_path / "nope.json"), doc) is None


def test_write_bench_path(tmp_path, bench_doc):
    path = write_bench(bench_doc, out_dir=tmp_path)
    assert path == tmp_path / "BENCH_smallbank.json"
    assert json.loads(path.read_text()) == bench_doc


# ---------------------------------------------------------------------- CLI


def test_cli_registry_covers_all_commands():
    names = [name for name, _, _, _ in COMMANDS]
    assert names == ["quickstart", "verify", "chaos", "elastic", "check",
                     "locality", "heatmap", "place", "smallbank", "trace",
                     "analyze", "bench", "list"]
    assert len(set(names)) == len(names)
    for _, help_line, _, handler in COMMANDS:
        assert help_line and callable(handler)


def test_cli_bench_list(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out


def test_cli_bench_writes_and_passes_against_self(tmp_path, capsys):
    rc = main(["bench", "--scenario", "smallbank", "--seed", "3",
               "--scale", str(SCALE), "--no-overhead",
               "--out-dir", str(tmp_path)])
    assert rc == 0
    path = tmp_path / "BENCH_smallbank.json"
    doc = json.loads(path.read_text())
    assert doc["schema_version"] == 1
    # Comparing a fresh run against its own baseline passes.
    rc = main(["bench", "--scenario", "smallbank", "--seed", "3",
               "--scale", str(SCALE), "--no-overhead", "--dry-run",
               "--against", str(path), "--out-dir", str(tmp_path)])
    assert rc == 0
    assert "=> OK" in capsys.readouterr().out


def test_cli_bench_fails_on_injected_slowdown(tmp_path, capsys):
    rc = main(["bench", "--scenario", "smallbank", "--seed", "3",
               "--scale", str(SCALE), "--no-overhead",
               "--out-dir", str(tmp_path)])
    assert rc == 0
    path = tmp_path / "BENCH_smallbank.json"
    doc = json.loads(path.read_text())
    # Inject a slowdown: pretend the baseline machine was 100x faster.
    doc["host"]["events_per_sec"] *= 100
    doc["host"]["txns_per_sec"] *= 100
    path.write_text(json.dumps(doc))
    rc = main(["bench", "--scenario", "smallbank", "--seed", "3",
               "--scale", str(SCALE), "--no-overhead", "--dry-run",
               "--against", str(path), "--out-dir", str(tmp_path)])
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_cli_bench_unknown_scenario():
    assert main(["bench", "--scenario", "nope", "--dry-run"]) == 2


# ------------------------------------------------------------------- slots


def test_hot_classes_have_slots():
    from repro.net.message import Message
    from repro.txn.transaction import (
        ReadOnlyTransaction,
        Transaction,
        _TxnBase,
    )

    for cls in (Message, _TxnBase, Transaction, ReadOnlyTransaction,
                HostProfiler):
        assert "__slots__" in cls.__dict__, cls
        assert "__dict__" not in dir(cls), cls
    # Slotted instances reject stray attributes.
    with pytest.raises(AttributeError):
        HostProfiler().stray = 1
