"""Store substrate: metadata, catalog, object store, directory."""

import pytest

from repro.store.catalog import Catalog
from repro.store.directory import DirectoryTable
from repro.store.meta import AccessLevel, Ots, OState, ReplicaSet, TState
from repro.store.object_store import ObjectStore


# ----------------------------------------------------------------- meta


def test_ots_lexicographic_order():
    assert Ots(1, 2) < Ots(2, 0)
    assert Ots(2, 1) < Ots(2, 2)
    assert Ots(3, 0) > Ots(2, 9)


def test_ots_next_for_bumps_version():
    assert Ots(4, 1).next_for(2) == Ots(5, 2)


def test_replicaset_levels():
    rs = ReplicaSet(owner=0, readers=(1, 2))
    assert rs.level_of(0) == AccessLevel.OWNER
    assert rs.level_of(1) == AccessLevel.READER
    assert rs.level_of(5) == AccessLevel.NON_REPLICA


def test_replicaset_with_owner_demotes_old():
    rs = ReplicaSet(owner=0, readers=(1, 2))
    moved = rs.with_owner(3)
    assert moved.owner == 3
    assert set(moved.readers) == {0, 1, 2}


def test_replicaset_with_owner_from_reader():
    rs = ReplicaSet(owner=0, readers=(1, 2))
    moved = rs.with_owner(1)
    assert moved.owner == 1
    assert set(moved.readers) == {0, 2}
    assert moved.size() == rs.size()


def test_replicaset_with_reader_idempotent():
    rs = ReplicaSet(owner=0, readers=(1,))
    assert rs.with_reader(1) == rs
    assert rs.with_reader(0) == rs
    assert set(rs.with_reader(2).readers) == {1, 2}


def test_replicaset_without_owner_leaves_none():
    rs = ReplicaSet(owner=0, readers=(1, 2))
    assert rs.without(0).owner is None
    assert rs.without(1).readers == (2,)


def test_replicaset_all_nodes():
    rs = ReplicaSet(owner=None, readers=(1, 2))
    assert rs.all_nodes() == frozenset({1, 2})
    assert rs.size() == 2


# --------------------------------------------------------------- catalog


def test_catalog_oid_assignment_dense():
    catalog = Catalog(3)
    catalog.add_table("a", 10)
    oids = [catalog.create_object("a", i) for i in range(5)]
    assert oids == [0, 1, 2, 3, 4]
    assert catalog.num_objects == 5


def test_catalog_sizes_and_lookup():
    catalog = Catalog(3)
    catalog.add_table("a", 10)
    catalog.add_table("b", 99)
    oa = catalog.create_object("a", "k1")
    ob = catalog.create_object("b", "k1")
    assert catalog.size_of(oa) == 10
    assert catalog.size_of(ob) == 99
    assert catalog.oid("a", "k1") == oa
    assert catalog.oid("b", "k1") == ob


def test_catalog_explicit_owner_respected():
    catalog = Catalog(4)
    catalog.add_table("a", 8)
    oid = catalog.create_object("a", "x", owner=2)
    assert catalog.initial_owner(oid) == 2
    replicas = catalog.initial_replicas(oid)
    assert replicas.owner == 2
    assert set(replicas.readers) == {3, 0}  # round-robin after the owner


def test_catalog_hash_placement_in_range():
    catalog = Catalog(5)
    catalog.add_table("a", 8)
    for i in range(50):
        oid = catalog.create_object("a", i)
        assert 0 <= catalog.initial_owner(oid) < 5


def test_catalog_duplicate_table_rejected():
    catalog = Catalog(3)
    catalog.add_table("a", 8)
    with pytest.raises(ValueError):
        catalog.add_table("a", 8)


def test_catalog_replication_degree_bounds():
    with pytest.raises(ValueError):
        Catalog(2, replication_degree=3)
    with pytest.raises(ValueError):
        Catalog(2, replication_degree=0)


def test_catalog_directory_nodes():
    assert Catalog(6).directory_nodes() == (0, 1, 2)
    assert Catalog(2, replication_degree=2).directory_nodes() == (0, 1)


def test_table_spec_counts():
    catalog = Catalog(3)
    spec = catalog.add_table("a", 8)
    catalog.create_object("a", 1)
    catalog.create_object("a", 2)
    assert spec.count == 2
    assert spec.first_oid == 0


# ------------------------------------------------------------ object store


def test_store_create_and_get():
    store = ObjectStore(0)
    rs = ReplicaSet(0, (1,))
    obj = store.create(5, "data", rs)
    assert store.get(5) is obj
    assert obj.t_state == TState.VALID
    assert obj.o_state == OState.VALID
    assert obj.t_version == 0


def test_store_duplicate_create_rejected():
    store = ObjectStore(0)
    store.create(1, None, None)
    with pytest.raises(ValueError):
        store.create(1, None, None)


def test_store_require_missing_raises():
    with pytest.raises(KeyError):
        ObjectStore(0).require(9)


def test_store_drop_and_len():
    store = ObjectStore(0)
    store.create(1, None, None)
    store.create(2, None, None)
    assert len(store) == 2
    store.drop(1)
    assert not store.has(1)
    assert len(store) == 1
    store.drop(1)  # idempotent


def test_store_iteration():
    store = ObjectStore(0)
    store.create(1, None, None)
    store.create(2, None, None)
    assert {o.oid for o in store} == {1, 2}


# --------------------------------------------------------------- directory


def test_directory_create_get():
    table = DirectoryTable(0)
    entry = table.create(3, ReplicaSet(1, (2,)))
    assert table.get(3) is entry
    assert table.require(3).replicas.owner == 1


def test_directory_duplicate_rejected():
    table = DirectoryTable(0)
    table.create(1, ReplicaSet(0, ()))
    with pytest.raises(ValueError):
        table.create(1, ReplicaSet(0, ()))


def test_directory_strip_dead():
    table = DirectoryTable(0)
    table.create(1, ReplicaSet(owner=3, readers=(1, 2)))
    table.create(2, ReplicaSet(owner=0, readers=(1,)))
    changed = table.strip_dead(frozenset({0, 1, 2}))
    assert changed == 1
    assert table.require(1).replicas.owner is None
    assert table.require(2).replicas.owner == 0


def test_directory_items_and_len():
    table = DirectoryTable(0)
    table.create(1, ReplicaSet(0, ()))
    assert len(table) == 1
    assert [oid for oid, _ in table.items()] == [1]
