"""Transaction layer: the tr_* API, locks, opacity, read-only txns."""

import pytest

from repro.store.meta import TState
from repro.txn.errors import AbortReason, TxnAborted
from tests.conftest import make_cluster, run_app


def test_interactive_write_transaction():
    cluster = make_cluster(3)
    api = cluster.handles[0].api
    results = []

    def app():
        txn = api.tr_create(thread=0)
        old = yield from txn.open_write(0)
        txn.write(0, (old or 0) + 10)
        ok = yield from txn.commit()
        results.append(ok)

    run_app(cluster, 0, app())
    assert results == [True]
    assert api.peek(0) == 10


def test_interactive_abort_rolls_back():
    cluster = make_cluster(3)
    api = cluster.handles[0].api

    def app():
        txn = api.tr_create(thread=0)
        yield from txn.open_write(0)
        txn.write(0, 999)
        txn.abort()

    run_app(cluster, 0, app())
    assert api.peek(0) == 0  # private copy discarded (opacity)
    assert cluster.handles[0].store.get(0).locked_by is None


def test_write_requires_open():
    cluster = make_cluster(3)
    txn = cluster.handles[0].api.tr_create(0)
    with pytest.raises(RuntimeError):
        txn.write(0, 5)


def test_open_write_acquires_remote_ownership():
    cluster = make_cluster(3)
    api = cluster.handles[0].api
    oid = 1  # owned by node 1
    results = []

    def app():
        r = yield from api.execute_write(0, [oid])
        results.append(r)

    run_app(cluster, 0, app())
    assert results[0].committed
    assert results[0].ownership_requests >= 1
    assert cluster.owner_of(oid) == 0


def test_local_write_needs_no_ownership_request():
    cluster = make_cluster(3)
    api = cluster.handles[0].api
    results = []

    def app():
        r = yield from api.execute_write(0, [0])
        results.append(r)

    run_app(cluster, 0, app())
    assert results[0].ownership_requests == 0


def test_lock_conflict_aborts_and_retries():
    cluster = make_cluster(3)
    api = cluster.handles[0].api
    results = []

    def slow_then_release():
        txn = api.tr_create(thread=0)
        yield from txn.open_write(0)
        yield 100.0  # hold the lock a while
        txn.write(0, 1)
        yield from txn.commit()

    def contender():
        yield 1.0  # let the first txn grab the lock
        r = yield from api.execute_write(1, [0])
        results.append(r)

    cluster.spawn_app(0, 0, slow_then_release())
    cluster.spawn_app(0, 1, contender())
    cluster.run(until=100_000)
    assert results[0].committed
    assert results[0].aborts >= 1
    assert api.peek(0) == 2  # both writes applied


def test_two_threads_disjoint_objects_no_conflict():
    cluster = make_cluster(3, spread=False)
    api = cluster.handles[0].api
    results = []

    def app(thread, oid):
        r = yield from api.execute_write(thread, [oid])
        results.append(r)

    cluster.spawn_app(0, 0, app(0, 0))
    cluster.spawn_app(0, 1, app(1, 1))
    cluster.run(until=100_000)
    assert all(r.committed and r.aborts == 0 for r in results)


def test_read_only_transaction_commits_locally():
    cluster = make_cluster(3)
    api = cluster.handles[1].api  # node 1 is a reader of oid 0
    results = []

    def app():
        r = yield from api.execute_read(0, [0])
        results.append(r)

    cluster.run(until=10_000)  # settle the initial view's barrier round
    before = cluster.network.total_msgs
    run_app(cluster, 1, app())
    assert results[0].committed
    assert cluster.network.total_msgs == before  # zero network traffic


def test_read_only_sees_committed_value_on_reader():
    cluster = make_cluster(3)
    writer = cluster.handles[0].api
    reader = cluster.handles[1].api
    seen = []

    def write_then_signal():
        yield from writer.execute_write(0, [0], compute=lambda _o, _v: 42)

    def read_later():
        yield 1_000.0
        txn = reader.tr_r_create(0)
        value = yield from txn.open_read(0)
        yield from txn.commit()
        seen.append(value)

    cluster.spawn_app(0, 0, write_then_signal())
    cluster.spawn_app(1, 0, read_later())
    cluster.run(until=100_000)
    assert seen == [42]


def test_read_only_aborts_on_invalidated_object():
    cluster = make_cluster(3)
    obj = cluster.handles[1].store.get(0)
    obj.t_state = TState.INVALID
    api = cluster.handles[1].api
    results = []

    def app():
        txn = api.tr_r_create(0)
        try:
            yield from txn.open_read(0)
        except TxnAborted as abort:
            results.append(abort.reason)

    run_app(cluster, 1, app())
    assert results == [AbortReason.OBJECT_INVALID]


def test_read_only_version_change_mid_txn_aborts_then_retries():
    cluster = make_cluster(3)
    reader = cluster.handles[1]
    obj = reader.store.get(0)
    api = reader.api
    results = []

    def app():
        r = yield from api.execute_read(0, [0], exec_us=20.0)
        results.append(r)

    # Bump the version mid-read (simulating a racing remote commit).
    def bump():
        obj.t_version += 1
        obj.t_state = TState.INVALID
        cluster.sim.call_after(5.0, restore)

    def restore():
        obj.t_state = TState.VALID

    cluster.sim.call_after(2.0, bump)
    run_app(cluster, 1, app())
    assert results[0].committed
    assert results[0].aborts >= 1


def test_write_txn_reader_level_read_validated():
    cluster = make_cluster(3)
    api = cluster.handles[0].api  # node 0 reads oid 1 (owned by node 1)
    results = []

    def app():
        r = yield from api.execute_write(0, write_set=[0], read_set=[1])
        results.append(r)

    run_app(cluster, 0, app())
    assert results[0].committed
    # Reader-level read: no ownership transfer of oid 1.
    assert cluster.owner_of(1) == 1


def test_opacity_write_never_partially_visible():
    """Concurrent readers never see a torn multi-object write."""
    cluster = make_cluster(3, spread=False)
    api = cluster.handles[0].api
    reader = cluster.handles[1].api
    torn = []

    def writer():
        for _ in range(10):
            yield from api.execute_write(
                0, [0, 1], compute=lambda _o, v: (v or 0) + 1)

    def observer():
        while cluster.sim.now < 50.0:
            r = yield from reader.execute_read(0, [0, 1])
            if r.committed:
                a = reader.peek(0)
                b = reader.peek(1)
                if a != b:
                    torn.append((a, b))
            yield 0.7

    cluster.spawn_app(0, 0, writer())
    cluster.spawn_app(1, 0, observer())
    cluster.run(until=100_000)
    assert torn == []


def test_txn_result_latency_recorded():
    cluster = make_cluster(3)
    api = cluster.handles[0].api
    results = []

    def app():
        r = yield from api.execute_write(0, [1])  # remote: has latency
        results.append(r)

    run_app(cluster, 0, app())
    assert results[0].latency_us > 1.0


def test_retries_exhausted_reports_failure():
    cluster = make_cluster(3)
    api = cluster.handles[0].api
    api.max_retries = 2
    # Permanently lock the object from another thread.
    cluster.handles[0].store.get(0).locked_by = (0, 99)
    results = []

    def app():
        r = yield from api.execute_write(0, [0])
        results.append(r)

    run_app(cluster, 0, app())
    assert not results[0].committed
    assert results[0].abort_reason == AbortReason.RETRIES_EXHAUSTED


def test_peek_missing_object_is_none():
    cluster = make_cluster(3)
    assert cluster.handles[0].api.peek(999) is None
