"""Verification layer: checker, abstract models, invariants, explorer."""

import pytest

from repro.verify import (
    ExplorerConfig,
    InvariantViolation,
    bfs_check,
    check_commit_model,
    check_invariants,
    check_ownership_model,
    check_quiescent,
    explore,
)
from repro.store.meta import OState, ReplicaSet
from tests.conftest import make_cluster, run_app


# ------------------------------------------------------------ bfs checker


def test_bfs_explores_all_states():
    # Counter 0..3 with increment action.
    def actions(state):
        if state < 3:
            yield ("inc", state + 1)

    result = bfs_check([0], actions, [("nonneg", lambda s: s >= 0)])
    assert result.ok
    assert result.states_explored == 4
    assert result.transitions == 3


def test_bfs_finds_violation_with_shortest_trace():
    def actions(state):
        yield ("inc", state + 1)
        yield ("jump", state + 10)

    result = bfs_check([0], actions, [("small", lambda s: s < 10)],
                       max_states=100)
    assert not result.ok
    assert result.violation == "small"
    assert result.trace == ["jump"]  # one step, not ten increments


def test_bfs_truncates_at_budget():
    def actions(state):
        yield ("inc", state + 1)

    result = bfs_check([0], actions, [], max_states=10)
    assert result.truncated
    assert result.states_explored == 10


def test_bfs_checks_initial_states():
    result = bfs_check([5], lambda s: [], [("never", lambda s: False)])
    assert not result.ok
    assert result.trace == []


# --------------------------------------------------------- abstract models


def test_ownership_model_exhaustive_ok():
    result = check_ownership_model()
    assert result.ok
    assert not result.truncated
    assert result.states_explored > 1_000


def test_commit_model_exhaustive_ok():
    result = check_commit_model()
    assert result.ok
    assert not result.truncated
    assert result.states_explored > 10_000


def test_ownership_model_catches_broken_invariant():
    """Sanity: the checker does fail when given an impossible invariant."""
    from repro.verify import ownership_model as om

    result = bfs_check([om.initial_state()], om.actions,
                       [("no-grants", lambda s: all(
                           not (isinstance(r[0], tuple) and r[0][0] == "granted")
                           for r in s[1]))],
                       max_states=100_000)
    assert not result.ok  # a grant is reachable, so this must trip


# --------------------------------------------------------------- invariants


def test_invariants_pass_on_healthy_cluster(cluster3):
    check_invariants(cluster3)


def test_single_owner_violation_detected():
    cluster = make_cluster(3)
    # Corrupt: two nodes believe they own object 0.
    for nid in (0, 1):
        obj = cluster.handles[nid].store.get(0)
        obj.o_replicas = ReplicaSet(owner=nid, readers=())
        obj.o_state = OState.VALID
    with pytest.raises(InvariantViolation):
        check_invariants(cluster)


def test_consistency_violation_detected():
    cluster = make_cluster(3)
    obj = cluster.handles[1].store.get(0)
    obj.t_data = "divergent"  # same version, different data
    with pytest.raises(InvariantViolation):
        check_invariants(cluster)


def test_quiescence_clean_after_workload():
    cluster = make_cluster(3)
    api = cluster.handles[0].api

    def app():
        for oid in range(5):
            yield from api.execute_write(0, [oid])

    run_app(cluster, 0, app())
    cluster.run(until=1_000_000)
    assert check_quiescent(cluster) == []


# ----------------------------------------------------------------- explorer


def test_explorer_clean_sweep():
    result = explore(seeds=4, cfg=ExplorerConfig(txns_per_node=8))
    assert result.seeds_run == 4
    assert result.violations == []
    assert result.nonquiescent == []
    assert result.committed_total > 0
