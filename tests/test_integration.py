"""End-to-end scenarios spanning every subsystem."""


from repro.store.meta import TState
from repro.verify.invariants import check_invariants, check_quiescent
from tests.conftest import make_cluster
from repro.workloads import (
    SmallbankWorkload,
    TatpWorkload,
    run_zeus_workload,
)
from repro.harness.zeus_cluster import ZeusCluster
from repro.sim.params import FaultParams, SimParams


def test_smallbank_money_conservation():
    """Transfers between accounts conserve the total balance."""
    wl = SmallbankWorkload(3, accounts_per_node=200, remote_frac=0.05)
    params = SimParams().scaled_threads(app=2, worker=2)
    cluster = ZeusCluster(3, params=params, catalog=wl.catalog)
    cluster.load(init_value=100)

    transferred = []

    def transfer(api, frm, to):
        txn = api.tr_create(0)
        a = yield from txn.open_write(frm)
        b = yield from txn.open_write(to)
        txn.write(frm, a - 10)
        txn.write(to, b + 10)
        yield from txn.commit()
        transferred.append((frm, to))

    api0 = cluster.handles[0].api
    rng = cluster.rng.stream("transfers")
    oids = wl.checking[:60]

    def driver():
        for _ in range(40):
            frm, to = rng.sample(oids, 2)
            yield from transfer(api0, frm, to)

    cluster.spawn_app(0, 0, driver())
    cluster.run(until=2_000_000)
    assert len(transferred) == 40
    # Sum over authoritative (owner) copies.
    total = 0
    for oid in oids:
        owner = cluster.owner_of(oid)
        total += cluster.handles[owner].api.peek(oid)
    assert total == 100 * len(oids)
    check_invariants(cluster)


def test_mixed_workload_with_faulty_network():
    """A lossy, reordering, duplicating network changes nothing observable."""
    wl = TatpWorkload(3, subscribers_per_node=200, remote_frac=0.05)
    params = SimParams(
        faults=FaultParams(loss_prob=0.01, duplicate_prob=0.01,
                           reorder_max_us=4.0),
    ).scaled_threads(app=2, worker=2)
    cluster = ZeusCluster(3, params=params, catalog=wl.catalog)
    cluster.load(init_value=0)
    stats = run_zeus_workload(cluster, wl.spec_for, duration_us=5_000.0,
                              threads=2)
    assert stats.committed > 1_000
    cluster.run(until=2_000_000)  # drain retransmissions
    check_invariants(cluster)
    assert check_quiescent(cluster) == []


def test_node_crash_mid_workload_recovers_and_continues():
    wl = SmallbankWorkload(4, accounts_per_node=150, remote_frac=0.05)
    params = SimParams(lease_us=2_000.0, heartbeat_us=200.0).scaled_threads(
        app=2, worker=2)
    cluster = ZeusCluster(4, params=params, catalog=wl.catalog)
    cluster.load(init_value=100)
    cluster.start_membership()
    cluster.crash(3, at=2_000.0)
    stats = run_zeus_workload(cluster, wl.spec_for, duration_us=60_000.0,
                              threads=2)
    assert stats.committed > 5_000
    assert cluster.nodes[0].epoch == 2
    cluster.run(until=10_000_000)
    check_invariants(cluster)


def test_ownership_migration_then_read_anywhere():
    """Write at one node, migrate to another, read consistently at a third."""
    cluster = make_cluster(3)
    oid = 0
    seen = []

    def writer():
        api = cluster.handles[0].api
        yield from api.execute_write(0, [oid], compute=lambda _o, _v: "v1")

    def migrator():
        yield 1_000.0
        api = cluster.handles[1].api
        yield from api.execute_write(0, [oid],
                                     compute=lambda _o, _v: "v2")

    def reader():
        yield 2_000.0
        api = cluster.handles[2].api
        txn = api.tr_r_create(0)
        value = yield from txn.open_read(oid)
        yield from txn.commit()
        seen.append(value)

    cluster.spawn_app(0, 0, writer())
    cluster.spawn_app(1, 0, migrator())
    cluster.spawn_app(2, 0, reader())
    cluster.run(until=1_000_000)
    assert seen == ["v2"]
    assert cluster.owner_of(oid) == 1


def test_sustained_pipelines_stay_bounded():
    """Long pipelined runs do not leak pending slots or invalid objects."""
    cluster = make_cluster(3, objects=12, spread=False)
    api = cluster.handles[0].api

    def hammer():
        for i in range(300):
            yield from api.execute_write(0, [i % 12])

    cluster.spawn_app(0, 0, hammer())
    cluster.run(until=5_000_000)
    cm = cluster.handles[0].commit
    assert cm.counters["committed"] == 300
    assert all(not pipe.slots for pipe in cm._coord.values())
    for h in cluster.handles:
        for obj in h.store:
            assert obj.t_state == TState.VALID


def test_six_node_cluster_full_stack():
    wl = TatpWorkload(6, subscribers_per_node=100, remote_frac=0.1)
    params = SimParams().scaled_threads(app=2, worker=2)
    cluster = ZeusCluster(6, params=params, catalog=wl.catalog)
    cluster.load(init_value=0)
    stats = run_zeus_workload(cluster, wl.spec_for, duration_us=5_000.0,
                              threads=2)
    assert stats.committed > 2_000
    assert stats.objects_acquired > 0  # migrations happened
    cluster.run(until=2_000_000)
    check_invariants(cluster)
