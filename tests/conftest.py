"""Shared test fixtures: small clusters and catalogs."""

import pytest

from repro.harness.zeus_cluster import ZeusCluster
from repro.sim.params import SimParams
from repro.store.catalog import Catalog


def make_catalog(num_nodes=3, objects=10, degree=3, size=64, spread=True):
    catalog = Catalog(num_nodes, replication_degree=degree)
    catalog.add_table("t", size)
    for i in range(objects):
        owner = i % num_nodes if spread else 0
        catalog.create_object("t", i, owner=owner)
    return catalog


def make_cluster(num_nodes=3, objects=10, degree=3, size=64, spread=True,
                 seed=0, fast_failover=False, **params_kw):
    catalog = make_catalog(num_nodes, objects, degree, size, spread)
    kw = dict(params_kw)
    if fast_failover:
        kw.setdefault("lease_us", 2_000.0)
        kw.setdefault("heartbeat_us", 200.0)
    params = SimParams().with_(**kw) if kw else SimParams()
    cluster = ZeusCluster(num_nodes, params=params, catalog=catalog, seed=seed)
    cluster.load(init_value=0)
    return cluster


def run_app(cluster, node_id, gen, until=500_000.0, thread=0):
    """Spawn one app generator and run the simulator; returns the process."""
    proc = cluster.spawn_app(node_id, thread, gen)
    cluster.run(until=until)
    return proc


@pytest.fixture
def cluster3():
    return make_cluster(3)


@pytest.fixture
def cluster6():
    return make_cluster(6, objects=20)
