"""Durable storage tier: WAL fsync semantics, crash-consistent snapshots,
cold-start replay, and full-cluster power-loss recovery."""

import pytest

from repro.chaos.campaign import CampaignConfig, run_campaign, run_chaos_once
from repro.chaos.generator import generate_schedule
from repro.obs.registry import MetricsRegistry
from repro.sim.kernel import Simulator
from repro.sim.params import DiskParams
from repro.sim.resources import DiskDevice
from repro.store.wal import ABORT, COMMIT, REDO, WalRecord, WriteAheadLog
from tests.conftest import make_cluster


def make_wal(fsync_policy="group"):
    sim = Simulator()
    params = DiskParams(enabled=True, fsync_policy=fsync_policy)
    disk = DiskDevice(sim, params.seek_us, params.write_bytes_per_us,
                      params.fsync_us, name="disk-test")
    registry = MetricsRegistry()
    wal = WriteAheadLog(sim, disk, params, registry.group("wal", node=0))
    return sim, wal


# ======================================================================
# WAL fsync policies
# ======================================================================


def test_group_policy_batches_appends_into_one_fsync():
    sim, wal = make_wal("group")
    futs = [wal.durability_future(wal.append(WalRecord(REDO, key=("k", i),
                                                       updates=[], pre=[])))
            for i in range(3)]
    # Inside the group window nothing is durable yet.
    sim.run(until=wal.params.group_window_us / 2)
    assert not any(f.done() for f in futs)
    assert wal.durable_lsn == -1
    sim.run()
    assert all(f.done() for f in futs)
    assert wal.durable_lsn == 2
    assert wal.counters.get("fsync_batches") == 1


def test_always_policy_fsyncs_without_waiting_for_the_window():
    sim, wal = make_wal("always")
    fut = wal.durability_future(wal.append(WalRecord(COMMIT, key=("k",))))
    sim.run()
    assert fut.done()
    # The record went durable well before a group window would even fire.
    assert sim.now < wal.params.group_window_us


def test_flush_now_trumps_a_waiting_group_window():
    sim, wal = make_wal("group")
    rec = wal.append(WalRecord(COMMIT, key=("k",)))
    fut = wal.flush_now()
    # Durable strictly before the pending group window would have fired.
    sim.run(until=wal.params.group_window_us - 1.0)
    assert fut.done()
    assert wal.durable_lsn == rec.lsn


# ======================================================================
# Crash semantics: the volatile tail and in-flight fsyncs die with power
# ======================================================================


def test_power_fail_discards_inflight_fsync_and_pending_futures():
    sim, wal = make_wal("always")
    rec = wal.append(WalRecord(COMMIT, key=("k",)))
    fut = wal.durability_future(rec)
    # Let the flush *start* (the fsync completion is now in flight)...
    sim.run(until=0.5)
    # ...then lose power before it lands.
    wal.power_fail()
    sim.run()
    # The completion scheduled before the crash must not be believed: the
    # record is gone and its durability ack never arrives.
    assert not fut.done()
    assert wal.durable_lsn == -1
    assert wal.durable_records() == []
    # The log keeps working after the reboot: new appends go durable.
    fut2 = wal.durability_future(wal.append(WalRecord(COMMIT, key=("k2",))))
    sim.run()
    assert fut2.done()
    assert wal.durable_records()[-1].key == ("k2",)


# ======================================================================
# Snapshot truncation
# ======================================================================


def test_install_snapshot_truncates_resolved_slots_keeps_inflight_redo():
    sim, wal = make_wal("group")
    wal.append(WalRecord(REDO, key=("k1",), updates=[], pre=[]))
    wal.append(WalRecord(COMMIT, key=("k1",)))
    inflight = wal.append(WalRecord(REDO, key=("k2",), updates=[], pre=[]))
    dropped = wal.install_snapshot({"fake": True}, cap_lsn=wal.next_lsn)
    # k1's REDO+COMMIT are covered by the snapshot; k2 is unresolved and
    # its REDO must survive so replay can still undo it.
    assert dropped == 2
    assert [r.lsn for r in wal._records] == [inflight.lsn]
    assert wal.snapshot == ({"fake": True}, 3)
    assert wal.counters.get("truncated") == 2


# ======================================================================
# Cold-start replay (snapshot restore + redo/undo + version floor)
# ======================================================================


def _durable_cluster(**disk_kw):
    kw = dict(enabled=True, fsync_policy="always")
    kw.update(disk_kw)
    return make_cluster(3, objects=6, disk=DiskParams(**kw))


def test_replay_redoes_committed_slots():
    cluster = _durable_cluster(snapshot_interval_us=0.0)
    h = cluster.handles[0]
    dur = h.node.durability
    obj = h.store.get(0)
    assert obj is not None and obj.t_version == 0
    key = dur.log_redo_coord(0, [(0, 1, "A", 8)],
                             [(0, obj.t_version, obj.t_data)])
    dur.log_commit(key)
    obj.t_version, obj.t_data = 1, "A"
    cluster.run(until=cluster.sim.now + 200.0)

    dur.power_fail()
    h.store.clear()
    if h.directory is not None:
        h.directory.clear()
    stats = dur.replay()

    back = h.store.get(0)
    assert back is not None
    assert (back.t_version, back.t_data) == (1, "A")
    assert stats.redo_applied == 1
    assert stats.undone == 0


def test_replay_undoes_inflight_slot_and_floors_its_version():
    cluster = _durable_cluster(snapshot_interval_us=0.0)
    h = cluster.handles[0]
    dur = h.node.durability
    obj = h.store.get(0)
    # Committed write v1, then an in-flight write v2 whose COMMIT never
    # reached disk; a snapshot captures the applied-but-unresolved state.
    key1 = dur.log_redo_coord(0, [(0, 1, "A", 8)], [(0, 0, obj.t_data)])
    dur.log_commit(key1)
    obj.t_version, obj.t_data = 1, "A"
    key2 = dur.log_redo_coord(0, [(0, 2, "B", 8)], [(0, 1, "A")])
    obj.t_version, obj.t_data = 2, "B"
    h.node.spawn(dur.snapshot_once(), name="snap-test")
    cluster.run(until=cluster.sim.now + 500.0)
    assert dur.wal.snapshot[1] > 0  # genesis superseded

    dur.power_fail()
    h.store.clear()
    if h.directory is not None:
        h.directory.clear()
    stats = dur.replay()

    back = h.store.get(0)
    # Data rolled back to the committed pre-image, but the version label
    # the log handed out is never reissued: the counter stays floored at
    # the undone write's version and the object is reported as such.
    assert back.t_data == "A"
    assert back.t_version == 2
    assert stats.undone == 1
    assert 0 in stats.floored
    # The undo itself is logged so a second crash replays identically.
    assert any(r.kind == ABORT and r.key == key2
               for r in dur.wal._records)


# ======================================================================
# Full-cluster power loss through the harness
# ======================================================================


def test_durable_commits_survive_full_power_loss():
    cluster = _durable_cluster()
    cluster.start_membership()
    cluster.run(until=500.0)
    api = cluster.handles[0].api
    results = []

    def app():
        for _ in range(10):
            r = yield from api.execute_write(0, [0])
            results.append(r)

    cluster.spawn_app(0, 0, app())
    cluster.run(until=5_000.0)
    assert sum(1 for r in results if r.committed) == 10
    before = max(h.store.get(0).t_version for h in cluster.handles
                 if h.store.get(0) is not None)
    data_before = next(h.store.get(0).t_data for h in cluster.handles
                       if h.store.get(0) is not None
                       and h.store.get(0).t_version == before)

    cluster.power_loss()
    view_at = cluster.cold_restart()
    cluster.run(until=view_at + 3_000.0)

    survivors = [h.store.get(0) for h in cluster.handles
                 if h.store.get(0) is not None]
    assert survivors, "durable object vanished across the power loss"
    after = max(o.t_version for o in survivors)
    assert after >= before
    assert any(o.t_data == data_before and o.t_version >= before
               for o in survivors)
    registry = cluster.obs.registry
    assert registry.counter_total("recovery.wal_replayed") > 0


def test_cold_restart_without_durability_tier_is_amnesia():
    cluster = make_cluster(3, objects=6)
    cluster.start_membership()
    cluster.run(until=500.0)
    api = cluster.handles[0].api

    def app():
        yield from api.execute_write(0, [0])

    cluster.spawn_app(0, 0, app())
    cluster.run(until=3_000.0)
    cluster.power_loss()
    cluster.cold_restart()
    # The paper's in-memory semantics: nothing survives the outage.
    assert all(h.store.get(oid) is None
               for h in cluster.handles for oid in range(6))


# ======================================================================
# Power-loss chaos campaign: the acceptance gate
# ======================================================================


def _power_loss_cfg(policy, seeds=(0, 1, 2)):
    return CampaignConfig(
        duration_us=12_000.0, quiesce_us=12_000.0, restart_wave_us=6_000.0,
        num_schedules=1, seeds=seeds, power_loss=True, check_history=True,
        disk=DiskParams(enabled=True, fsync_policy=policy))


@pytest.mark.parametrize("policy", ["group", "always"])
def test_power_loss_campaign_audits_clean(policy):
    cfg = _power_loss_cfg(policy)
    result = run_campaign(cfg)
    assert result.ok, result.summary()
    for run in result.runs:
        assert any(e.startswith("power_loss") for e in run.timeline)
        assert any(e.startswith("cold_restart") for e in run.timeline)
        assert run.committed > 0
    assert result.registry.counter_total("recovery.wal_replayed") > 0


@pytest.mark.parametrize("policy", ["group", "always"])
def test_power_loss_run_is_deterministic(policy):
    cfg = _power_loss_cfg(policy, seeds=(0,))
    schedule = generate_schedule(cfg.num_nodes, cfg.duration_us,
                                 seed=cfg.schedule_seed_base,
                                 difficulty=cfg.difficulty, power_loss=True)
    first = run_chaos_once(schedule, 0, cfg)
    second = run_chaos_once(schedule, 0, cfg)
    assert first.digest() == second.digest()
    assert first.ok, list(first.audit.problems())
