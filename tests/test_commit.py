"""Reliable commit: replication, pipelining, read-only safety, recovery."""


from repro.store.meta import TState
from tests.conftest import make_cluster, run_app


def write(cluster, node_id, oids, thread=0, value=None, until=100_000.0):
    api = cluster.handles[node_id].api
    results = []

    def app():
        compute = (lambda _o, _v: value) if value is not None else None
        r = yield from api.execute_write(thread, oids, compute=compute)
        results.append(r)

    run_app(cluster, node_id, app(), until=until, thread=thread)
    return results[0]


def test_write_replicates_to_all_readers():
    cluster = make_cluster(3)
    oid = 0
    result = write(cluster, 0, [oid], value="payload")
    assert result.committed
    for h in cluster.handles:
        obj = h.store.get(oid)
        assert obj is not None
        assert obj.t_data == "payload"
        assert obj.t_version == 1
        assert obj.t_state == TState.VALID


def test_versions_monotonic_across_commits():
    cluster = make_cluster(3)
    oid = 0
    api = cluster.handles[0].api

    def app():
        for _ in range(5):
            yield from api.execute_write(0, [oid])

    run_app(cluster, 0, app())
    for h in cluster.handles:
        assert h.store.get(oid).t_version == 5


def test_multi_object_commit_atomic_versions():
    cluster = make_cluster(3, spread=False)  # node 0 owns everything
    result = write(cluster, 0, [0, 1, 2])
    assert result.committed
    for h in cluster.handles:
        assert all(h.store.get(oid).t_version == 1 for oid in (0, 1, 2))


def test_commit_counters():
    cluster = make_cluster(3)
    write(cluster, 0, [0])
    cm = cluster.handles[0].commit
    assert cm.counters["submitted"] == 1
    assert cm.counters["committed"] == 1
    assert cluster.handles[1].commit.counters["applied"] == 1


def test_commit_latency_one_rtt_scale():
    cluster = make_cluster(3)
    write(cluster, 0, [0])
    lat = cluster.handles[0].commit.commit_latencies_us
    assert len(lat) == 1
    assert 3.0 < lat[0] < 20.0


def test_has_pending_during_commit_window():
    cluster = make_cluster(3)
    oid = 0
    api = cluster.handles[0].api
    cm = cluster.handles[0].commit
    observed = []

    def app():
        yield from api.execute_write(0, [oid])
        observed.append(cm.has_pending(oid))

    proc = cluster.spawn_app(0, 0, app())
    cluster.run(until=2.0)  # before R-ACKs can arrive
    if proc.done():
        assert observed == [True]
    cluster.run(until=100_000)
    assert not cm.has_pending(oid)


def test_pipelining_does_not_block_app_thread():
    """N back-to-back local writes take ~N * local-cost, not N * RTT."""
    cluster = make_cluster(3, objects=30, spread=False)
    api = cluster.handles[0].api
    finished = []

    def app():
        for i in range(20):
            yield from api.execute_write(0, [i])
        finished.append(cluster.sim.now)

    run_app(cluster, 0, app())
    # Blocking replication would cost >= 20 * ~7.5us RTT = 150us.
    assert finished[0] < 60.0


def test_pipeline_depth_backpressure():
    cluster = make_cluster(3, objects=40, spread=False)
    catalog_objects = 40

    deep = cluster  # default depth 32
    shallow = make_cluster(3, objects=40, spread=False)
    shallow.handles[0].commit.max_pipeline_depth = 1
    times = {}
    for tag, c in (("deep", deep), ("shallow", shallow)):
        api = c.handles[0].api
        done = []

        def app(api=api, done=done):
            for i in range(catalog_objects):
                yield from api.execute_write(0, [i])
            done.append(c.sim.now)

        run_app(c, 0, app())
        times[tag] = done[0]
    assert times["shallow"] > 2.0 * times["deep"]


def test_followers_apply_in_pipeline_order():
    cluster = make_cluster(3, objects=10, spread=False)
    api = cluster.handles[0].api
    order = []
    follower = cluster.handles[1]
    orig = follower.commit._apply_rinv

    def spy(fpipe, inv, ack_to=None):
        order.append(inv.slot)
        return orig(fpipe, inv, ack_to)

    follower.commit._apply_rinv = spy

    def app():
        for i in range(10):
            yield from api.execute_write(0, [i])

    run_app(cluster, 0, app())
    assert order == sorted(order)
    assert len(order) == 10


def test_different_threads_use_different_pipelines():
    cluster = make_cluster(3, objects=10, spread=False)
    api = cluster.handles[0].api

    def app(thread, oid):
        yield from api.execute_write(thread, [oid])

    cluster.spawn_app(0, 0, app(0, 0))
    cluster.spawn_app(0, 1, app(1, 1))
    cluster.run(until=100_000)
    follower = cluster.handles[1].commit
    assert (0, 0) in follower._follow
    assert (0, 1) in follower._follow


def test_reader_invalid_between_inv_and_val():
    """A reader must not serve the new value before validation (§5.3)."""
    cluster = make_cluster(3)
    oid = 0
    reader_obj = cluster.handles[1].store.get(oid)
    states = []

    def watcher():
        while cluster.sim.now < 40.0:
            states.append((reader_obj.t_version, reader_obj.t_state))
            yield 0.5

    cluster.handles[1].node.spawn(watcher())
    write(cluster, 0, [oid], until=50_000)
    # Once version 1 appears it is Invalid first, Valid only later.
    v1_states = [s for v, s in states if v == 1]
    assert v1_states, "watcher never saw the new version"
    assert v1_states[0] == TState.INVALID
    assert v1_states[-1] == TState.VALID


def test_replication_degree_one_commits_instantly():
    cluster = make_cluster(3, degree=1, replication_degree=1)
    result = write(cluster, 0, [0])
    assert result.committed
    assert cluster.handles[0].commit.counters["committed"] == 1
    assert not cluster.handles[1].store.has(0)


# --------------------------------------------------------------- failures


def test_coordinator_crash_followers_replay_consistently():
    cluster = make_cluster(3, objects=20, spread=False, fast_failover=True)
    cluster.start_membership()
    api = cluster.handles[0].api

    def burst():
        for i in range(20):
            yield from api.execute_write(0, [i])

    cluster.spawn_app(0, 0, burst())
    cluster.crash(0, at=25.0)
    cluster.run(until=100_000)
    h1, h2 = cluster.handles[1], cluster.handles[2]
    for oid in range(20):
        o1, o2 = h1.store.get(oid), h2.store.get(oid)
        assert o1.t_version == o2.t_version
        assert o1.t_state == TState.VALID
        assert o2.t_state == TState.VALID


def test_follower_crash_does_not_block_commits():
    cluster = make_cluster(3, fast_failover=True)
    cluster.start_membership()
    cluster.crash(2, at=100.0)
    api = cluster.handles[0].api
    results = []

    def app():
        yield 50_000.0  # wait out the lease; epoch 2 installed
        r = yield from api.execute_write(0, [0])
        results.append(r)

    run_app(cluster, 0, app(), until=200_000)
    assert results[0].committed
    assert cluster.handles[1].store.get(0).t_version == 1


def test_commit_in_flight_when_follower_dies_still_completes():
    cluster = make_cluster(3, fast_failover=True)
    cluster.start_membership()
    api = cluster.handles[0].api
    results = []

    def app():
        r = yield from api.execute_write(0, [0])
        results.append(r)

    cluster.spawn_app(0, 0, app())
    cluster.crash(2, at=3.0)  # R-INV to node 2 lost forever
    cluster.run(until=200_000)
    assert results[0].committed
    obj = cluster.handles[0].store.get(0)
    assert obj.t_state == TState.VALID  # validated after the epoch change


def test_recovered_broadcast_after_drain():
    cluster = make_cluster(3, objects=10, spread=False, fast_failover=True)
    cluster.start_membership()
    api = cluster.handles[0].api

    def burst():
        for i in range(10):
            yield from api.execute_write(0, [i])

    cluster.spawn_app(0, 0, burst())
    cluster.crash(0, at=20.0)
    cluster.run(until=100_000)
    # Recovery completed: barrier lifted on the live directory nodes.
    assert cluster.handles[1].ownership.barrier_lifted
    assert cluster.handles[2].ownership.barrier_lifted
