"""Elastic membership: live scale-out, graceful drain, and chaos during
rebalance.

Covers the reconfiguration subsystem end to end — ``add_nodes`` booting
joiners through quarantine under live traffic, ``drain`` retiring a node
with acquisitions in flight, the rebalancer converging around crashes and
partitions, the elastic schedule generator, the ninth (reconfig) audit,
the load balancer's scale-out support, and the analyzer's
``rebalance-blocked`` segment.
"""

import pytest

from repro.chaos import (
    AddNodesEvent,
    CampaignConfig,
    CrashEvent,
    DrainEvent,
    FaultSchedule,
    PartitionEvent,
    RecoverEvent,
    ScheduleConfig,
    campaign_schedule,
    generate_elastic_schedule,
    generate_schedule,
    run_chaos_once,
)
from repro.chaos.campaign import _build_cluster
from repro.chaos.schedule import ClusterRestartEvent
from repro.obs import Observability, build_timelines
from repro.verify.audit import CommitLedger, audit_reconfig, audit_run
from repro.workloads.base import RunStats, TxnSpec, spawn_zeus_workers


def _cfg(**overrides):
    kw = dict(num_schedules=1, seeds=(0,), difficulty=2,
              duration_us=20_000.0, quiesce_us=25_000.0, elastic=True)
    kw.update(overrides)
    return CampaignConfig(**kw)


def _spec_fn(num_objects):
    def spec(node_id, thread, rng):
        oids = rng.sample(range(num_objects), rng.randrange(1, 3))
        return TxnSpec(write_set=oids, exec_us=0.3)
    return spec


def _run_with_workers(cluster, cfg, stop_at, setup, seed=1):
    """Drive the counter workload on every base node while ``setup``
    schedules the reconfiguration, then converge + quiesce + audit."""
    ledger = CommitLedger()
    spec = _spec_fn(cfg.num_objects)

    def on_commit(node_id, s, _result):
        ledger.record(node_id, s.write_set)

    stats = RunStats()
    spawn_zeus_workers(cluster, spec, stats, stop_at=stop_at,
                       measure_from=0.0, threads=2,
                       node_ids=list(range(cfg.num_nodes)), seed=seed,
                       on_commit=on_commit)
    setup(spec, stats, on_commit)
    cluster.run(until=stop_at)
    done = cluster.rebalancer.converge()
    deadline = cluster.sim.now + 80_000.0
    while not done.done() and cluster.sim.now < deadline:
        cluster.run(until=cluster.sim.now + 2_000.0)
    cluster.run(until=cluster.sim.now + cfg.quiesce_us)
    return ledger, stats, done


# ======================================================================
# Scale-out and drain under live traffic
# ======================================================================


def test_add_nodes_under_load_balances_and_audits_clean():
    cfg = _cfg()
    obs = Observability()
    cluster = _build_cluster(cfg, seed=0, obs=obs)
    cluster.start_membership()
    joined = []

    def setup(spec, stats, on_commit):
        cluster.on_nodes_added(lambda ids: joined.extend(ids))
        cluster.sim.call_at(5_000.0, cluster.add_nodes, 2)

    ledger, stats, done = _run_with_workers(cluster, cfg, 20_000.0, setup)
    assert joined == [4, 5]
    assert done.done()
    assert stats.committed > 0
    audit = audit_run(cluster, ledger, initial_value=0)
    assert audit.ok, audit.problems()
    assert obs.registry.counter_total("rebalance.objects_moved") > 0


def test_drain_with_inflight_acquisitions_retires_node():
    cfg = _cfg()
    obs = Observability()
    cluster = _build_cluster(cfg, seed=1, obs=obs)
    cluster.start_membership()

    def setup(spec, stats, on_commit):
        # Workers on node 3 have acquisitions in flight when the drain
        # begins; they must wind down, not wedge the drain.
        cluster.drain(3, at=4_000.0)

    ledger, stats, done = _run_with_workers(cluster, cfg, 20_000.0, setup)
    assert done.done()
    assert 3 in cluster.retired
    assert not cluster.nodes[3].alive
    for oid in range(cfg.num_objects):
        rep = cluster.replicas_of(oid)
        if rep is not None:
            assert 3 not in rep.all_nodes()
            assert rep.owner != 3
    audit = audit_run(cluster, ledger, initial_value=0)
    assert audit.ok, audit.problems()
    assert obs.registry.counter_total("rebalance.drains_completed") == 1


def test_drain_of_directory_host_is_rejected():
    cfg = _cfg()
    cluster = _build_cluster(cfg, seed=0, obs=None)
    with pytest.raises(ValueError, match="placement is frozen"):
        cluster.drain(0)


# ======================================================================
# Chaos during rebalance (the satellite fault scenarios)
# ======================================================================


def test_donor_crash_mid_transfer_to_joiner():
    """A base node crashes while the rebalancer is feeding the joiner:
    movers abort, the repair pass re-replicates, audits stay clean."""
    cfg = _cfg()
    schedule = FaultSchedule([
        AddNodesEvent(at_us=4_000.0, count=1),
        CrashEvent(at_us=6_500.0, node=3),
        RecoverEvent(at_us=15_000.0, node=3),
    ], name="donor-crash")
    report = run_chaos_once(schedule, seed=0, cfg=cfg)
    assert report.ok, report.audit.problems()
    assert report.committed > 0
    assert any(e.startswith("add(") for e in report.timeline)
    assert any(e.startswith("crash(") for e in report.timeline)


def test_admission_races_unhealed_partition():
    """A joiner is admitted while a base node is still partitioned away;
    the heal lands later and the rebalance must still converge."""
    cfg = _cfg()
    schedule = FaultSchedule([
        PartitionEvent(at_us=3_000.0, a_side=(3,), b_side=(0, 1, 2),
                       heal_at_us=9_000.0),
        AddNodesEvent(at_us=4_000.0, count=1),
    ], name="admit-vs-partition")
    report = run_chaos_once(schedule, seed=0, cfg=cfg)
    assert report.ok, report.audit.problems()
    assert any(e.startswith("add(") for e in report.timeline)
    assert any(e.startswith("heal(") for e in report.timeline)


def test_elastic_campaign_cell_is_deterministic():
    cfg = _cfg()
    schedule = campaign_schedule(cfg, 0)
    r1 = run_chaos_once(schedule, seed=0, cfg=cfg)
    r2 = run_chaos_once(schedule, seed=0, cfg=cfg)
    assert r1.digest() == r2.digest()
    assert r1.ok, r1.audit.problems()
    assert any(e.startswith("add(") for e in r1.timeline)
    assert any(e.startswith("drain(") for e in r1.timeline)


# ======================================================================
# Elastic schedule generator + ScheduleConfig
# ======================================================================


def test_elastic_generator_deterministic_and_shaped():
    s1 = generate_elastic_schedule(4, 30_000.0, seed=5, difficulty=3)
    s2 = generate_elastic_schedule(4, 30_000.0, seed=5, difficulty=3)
    assert s1.signature() == s2.signature()
    kinds = {type(e) for e in s1}
    assert AddNodesEvent in kinds
    assert DrainEvent in kinds
    assert PartitionEvent in kinds  # difficulty 3 partitions the drainee
    assert CrashEvent in kinds      # difficulty >= 2 crashes the joiner

    p = generate_elastic_schedule(4, 30_000.0, seed=5, difficulty=3,
                                  power_loss=True)
    pkinds = {type(e) for e in p}
    assert ClusterRestartEvent in pkinds
    assert DrainEvent not in pkinds
    # The cold restart revives the joiner; no paired recovery is drawn.
    assert RecoverEvent not in pkinds


def test_elastic_generator_requires_four_base_nodes():
    with pytest.raises(ValueError, match=">= 4 base nodes"):
        generate_elastic_schedule(3, 30_000.0, seed=1)


def test_schedule_config_defaults_are_byte_identical():
    for seed in (0, 3, 11):
        for difficulty in (1, 2, 3):
            a = generate_schedule(4, 30_000.0, seed=seed,
                                  difficulty=difficulty)
            b = generate_schedule(4, 30_000.0, seed=seed,
                                  difficulty=difficulty,
                                  config=ScheduleConfig())
            assert a.signature() == b.signature()


def test_schedule_config_moves_recover_window():
    base = generate_schedule(4, 30_000.0, seed=0, difficulty=3,
                             require_crash=True)
    late = generate_schedule(4, 30_000.0, seed=0, difficulty=3,
                             require_crash=True,
                             config=ScheduleConfig(
                                 recover_window=(0.90, 0.95)))
    rec_base = [e for e in base if isinstance(e, RecoverEvent)]
    rec_late = [e for e in late if isinstance(e, RecoverEvent)]
    assert rec_base and rec_late
    assert rec_late[0].at_us >= 30_000.0 * 0.90
    assert rec_base[0].at_us <= 30_000.0 * 0.85

    unpaired = generate_schedule(4, 30_000.0, seed=0, difficulty=3,
                                 require_crash=True,
                                 config=ScheduleConfig(pair_recovery=False))
    assert not [e for e in unpaired if isinstance(e, RecoverEvent)]


# ======================================================================
# The ninth audit
# ======================================================================


def test_audit_reconfig_silent_without_reconfiguration():
    cfg = CampaignConfig()
    cluster = _build_cluster(cfg, seed=0, obs=None)
    cluster.start_membership()
    cluster.run(until=2_000.0)
    assert audit_reconfig(cluster) == []


def test_audit_reconfig_flags_missing_convergence():
    cfg = CampaignConfig()
    cluster = _build_cluster(cfg, seed=0, obs=None)
    cluster.start_membership()
    cluster.sim.call_at(1_000.0,
                        lambda: cluster.add_nodes(1, rebalance=False))
    cluster.run(until=30_000.0)
    problems = audit_reconfig(cluster)
    assert any("never reported convergence" in p for p in problems)


# ======================================================================
# Load balancer scale-out
# ======================================================================


def _make_lb(cluster, num_nodes):
    from repro.hermes.protocol import HermesReplica
    from repro.lb import LoadBalancer

    replicas = [HermesReplica(cluster.nodes[n], (0, 1, 2))
                for n in range(3)]
    return LoadBalancer(replicas, num_nodes=num_nodes)


def test_lb_grow_repins_fair_share():
    from tests.conftest import make_cluster

    cluster = make_cluster(6, objects=24)
    lb = _make_lb(cluster, num_nodes=4)
    keys = list(range(24))
    for k in keys:
        lb.repin(k, k % 4)
    cluster.run(until=2_000)  # let the Hermes routing writes propagate
    moved = lb.grow([4, 5], keys=keys)
    cluster.run(until=4_000)
    assert moved == 8  # 24 keys over 6 nodes: each joiner ends with 4
    assert lb.num_nodes == 6
    assert set(lb.active_nodes) == set(range(6))
    per_node = {}
    for k in keys:
        per_node.setdefault(lb.lookup(k), []).append(k)
    counts = [len(per_node.get(n, [])) for n in range(6)]
    assert max(counts) - min(counts) <= 1
    # Growing with already-active nodes is a no-op.
    assert lb.grow([4, 5], keys=keys) == 0


def test_lb_grow_without_keys_only_activates():
    from tests.conftest import make_cluster

    cluster = make_cluster(6, objects=6)
    lb = _make_lb(cluster, num_nodes=4)
    assert lb.grow([4]) == 0
    assert 4 in lb.active_nodes and lb.num_nodes == 5


# ======================================================================
# Analyzer: rebalance-blocked attribution
# ======================================================================


def test_analysis_attributes_rebalance_blocked():
    records = [
        {"type": "span", "name": "txn", "trace": 1, "parent": None,
         "start_us": 0.0, "end_us": 10.0, "node": 0, "tid": 0,
         "cat": "txn", "args": {"kind": "w", "committed": True}},
        {"type": "span", "name": "own_acquire", "trace": 1, "parent": 1,
         "start_us": 2.0, "end_us": 8.0, "node": 0, "tid": 0,
         "cat": "own", "args": {}},
        # A global migration batch (no trace id) overlapping the wait.
        {"type": "span", "name": "rebalance", "trace": None, "parent": None,
         "start_us": 4.0, "end_us": 6.0, "node": 0, "tid": 0,
         "cat": "rebalance", "args": {}},
    ]
    timelines = build_timelines(records)
    assert len(timelines) == 1
    seg = timelines[0].segments_ns
    assert seg["rebalance-blocked"] == 2_000
    assert seg["ownership-blocked"] == 4_000
    assert sum(seg.values()) == timelines[0].duration_ns


# ======================================================================
# Recovery repair backoff (jittered, capped)
# ======================================================================


def test_repair_backoff_is_jittered_exponential_and_capped():
    from repro.recovery.manager import _BACKOFF_CAP_US
    from tests.conftest import make_cluster

    recovery = make_cluster(3).handles[0].recovery
    prev_hi = 0.0
    for attempt in range(12):
        step = min(400.0 * (2.0 ** attempt), _BACKOFF_CAP_US)
        d = recovery._backoff_us(oid=7, attempt=attempt, base_us=400.0)
        assert 0.5 * step <= d <= step
        prev_hi = max(prev_hi, d)
    assert prev_hi <= _BACKOFF_CAP_US
    # Deterministic per (node, oid, attempt); decorrelated across oids.
    assert (recovery._backoff_us(7, 3, 400.0)
            == recovery._backoff_us(7, 3, 400.0))
    assert (recovery._backoff_us(7, 3, 400.0)
            != recovery._backoff_us(8, 3, 400.0))
