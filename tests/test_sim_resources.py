"""CPU servers/pools and FIFO locks."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.resources import CpuPool, CpuServer, FifoLock


def test_cpu_server_serializes_work():
    sim = Simulator()
    cpu = CpuServer(sim)
    done = []
    cpu.execute(10.0).add_done_callback(lambda f: done.append(sim.now))
    cpu.execute(5.0).add_done_callback(lambda f: done.append(sim.now))
    sim.run()
    assert done == [10.0, 15.0]


def test_cpu_server_idle_gap_not_charged():
    sim = Simulator()
    cpu = CpuServer(sim)
    done = []
    sim.call_after(100.0, lambda: cpu.execute(5.0).add_done_callback(
        lambda f: done.append(sim.now)))
    sim.run()
    assert done == [105.0]


def test_cpu_server_busy_time_accounting():
    sim = Simulator()
    cpu = CpuServer(sim)
    cpu.execute(10.0)
    cpu.execute(20.0)
    sim.run()
    assert cpu.busy_time == 30.0
    assert cpu.utilization(60.0) == pytest.approx(0.5)


def test_cpu_server_rejects_negative_cost():
    with pytest.raises(ValueError):
        CpuServer(Simulator()).execute(-1.0)


def test_cpu_server_charge_returns_finish_time():
    sim = Simulator()
    cpu = CpuServer(sim)
    assert cpu.charge(10.0) == 10.0
    assert cpu.charge(5.0) == 15.0


def test_pool_parallelism():
    sim = Simulator()
    pool = CpuPool(sim, size=2)
    done = []
    for _ in range(4):
        pool.execute(10.0).add_done_callback(lambda f: done.append(sim.now))
    sim.run()
    # Two at a time: finish at 10, 10, 20, 20.
    assert done == [10.0, 10.0, 20.0, 20.0]


def test_pool_single_server_is_serial():
    sim = Simulator()
    pool = CpuPool(sim, size=1)
    done = []
    pool.execute(3.0).add_done_callback(lambda f: done.append(sim.now))
    pool.execute(3.0).add_done_callback(lambda f: done.append(sim.now))
    sim.run()
    assert done == [3.0, 6.0]


def test_pool_requires_positive_size():
    with pytest.raises(ValueError):
        CpuPool(Simulator(), size=0)


def test_pool_utilization():
    sim = Simulator()
    pool = CpuPool(sim, size=2)
    pool.execute(10.0)
    sim.run()
    assert pool.utilization(10.0) == pytest.approx(0.5)


def test_fifo_lock_grants_in_order():
    sim = Simulator()
    lock = FifoLock(sim)
    order = []

    def worker(tag, hold):
        yield lock.acquire(tag)
        order.append(tag)
        yield hold
        lock.release()

    Process(sim, worker("a", 10.0))
    Process(sim, worker("b", 1.0))
    Process(sim, worker("c", 1.0))
    sim.run()
    assert order == ["a", "b", "c"]


def test_fifo_lock_try_acquire():
    sim = Simulator()
    lock = FifoLock(sim)
    assert lock.try_acquire("x") is True
    assert lock.try_acquire("y") is False
    lock.release()
    assert lock.try_acquire("y") is True


def test_fifo_lock_release_unlocked_raises():
    with pytest.raises(RuntimeError):
        FifoLock(Simulator()).release()


def test_fifo_lock_owner_tracking():
    sim = Simulator()
    lock = FifoLock(sim)
    lock.try_acquire("me")
    assert lock.owner == "me"
    lock.release()
    assert lock.owner is None
