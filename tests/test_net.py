"""Network model and reliable messaging layer."""

import pytest

from repro.net.fault import FaultInjector
from repro.net.message import Message
from repro.net.network import Network
from repro.net.reliable import ReliableTransport
from repro.sim.kernel import Simulator
from repro.sim.params import FaultParams, NetParams


def make_net(sim, faults=None, jitter=False):
    params = NetParams(jitter_us=0.3 if jitter else 0.0)
    injector = FaultInjector(faults) if faults else None
    return Network(sim, params, injector)


def test_message_delivered_after_latency():
    sim = Simulator()
    net = make_net(sim)
    got = []
    net.attach(0, lambda m: None)
    net.attach(1, lambda m: got.append((sim.now, m.payload)))
    net.send(Message(0, 1, "k", "hi", 100))
    sim.run()
    assert len(got) == 1
    t, payload = got[0]
    assert payload == "hi"
    # wire latency + (header + size)/bandwidth
    assert t == pytest.approx(2.0 + 164 / 5000.0)


def test_larger_message_takes_longer():
    sim = Simulator()
    net = make_net(sim)
    assert net.latency(10_000) > net.latency(100)


def test_bandwidth_accounting():
    sim = Simulator()
    net = make_net(sim)
    net.attach(0, lambda m: None)
    net.attach(1, lambda m: None)
    net.send(Message(0, 1, "k", None, 100))
    net.send(Message(1, 0, "k", None, 50))
    sim.run()
    header = net.params.header_bytes
    assert net.total_msgs == 2
    assert net.total_bytes == 150 + 2 * header
    assert net.bytes_between(0, 1) == net.total_bytes


def test_down_node_drops_traffic_both_ways():
    sim = Simulator()
    net = make_net(sim)
    got = []
    net.attach(0, got.append)
    net.attach(1, got.append)
    net.set_down(1)
    net.send(Message(0, 1, "k", None, 10))
    net.send(Message(1, 0, "k", None, 10))
    sim.run()
    assert got == []


def test_partition_and_heal():
    sim = Simulator()
    net = make_net(sim)
    got = []
    net.attach(0, lambda m: None)
    net.attach(1, got.append)
    net.partition(0, 1)
    net.send(Message(0, 1, "k", "lost", 10))
    sim.run()
    assert got == []
    net.heal(0, 1)
    net.send(Message(0, 1, "k", "ok", 10))
    sim.run()
    assert [m.payload for m in got] == ["ok"]


def test_duplicate_attach_rejected():
    sim = Simulator()
    net = make_net(sim)
    net.attach(0, lambda m: None)
    with pytest.raises(ValueError):
        net.attach(0, lambda m: None)


def test_fault_injector_drops_messages():
    sim = Simulator()
    import random

    net = make_net(sim, faults=FaultParams(loss_prob=1.0))
    net.faults.rng = random.Random(1)
    got = []
    net.attach(0, lambda m: None)
    net.attach(1, got.append)
    for _ in range(10):
        net.send(Message(0, 1, "k", None, 10))
    sim.run()
    assert got == []
    assert net.faults.dropped == 10


def test_fault_injector_duplicates():
    sim = Simulator()
    net = make_net(sim, faults=FaultParams(duplicate_prob=1.0))
    got = []
    net.attach(0, lambda m: None)
    net.attach(1, got.append)
    net.send(Message(0, 1, "k", None, 10))
    sim.run()
    assert len(got) == 2


# ------------------------------------------------------- registry counters


def test_drop_counters_in_registry():
    sim = Simulator()
    import random

    net = make_net(sim, faults=FaultParams(loss_prob=1.0))
    net.faults.rng = random.Random(1)
    net.attach(0, lambda m: None)
    net.attach(1, lambda m: None)
    for _ in range(7):
        net.send(Message(0, 1, "k", None, 10))
    sim.run()
    counters = net.obs.registry.snapshot()["counters"]
    assert counters["net.dropped"] == 7
    assert net.msgs_dropped == 7
    assert counters["net.delivered"] == 0


def test_duplicate_and_delay_counters_in_registry():
    sim = Simulator()
    import random

    net = make_net(sim, faults=FaultParams(duplicate_prob=1.0,
                                           reorder_max_us=20.0))
    net.faults.rng = random.Random(3)
    net.attach(0, lambda m: None)
    net.attach(1, lambda m: None)
    for _ in range(5):
        net.send(Message(0, 1, "k", None, 10))
    sim.run()
    assert net.msgs_duplicated == 5
    assert net.msgs_delayed > 0
    counters = net.obs.registry.snapshot()["counters"]
    assert counters["net.duplicated"] == 5
    assert counters["net.delivered"] == 10


def test_partition_drop_counter():
    sim = Simulator()
    net = make_net(sim)
    net.attach(0, lambda m: None)
    net.attach(1, lambda m: None)
    net.partition(0, 1)
    net.send(Message(0, 1, "k", None, 10))
    sim.run()
    counters = net.obs.registry.snapshot()["counters"]
    assert counters["net.dropped_partition"] == 1


def test_retransmit_counter_in_registry():
    sim = Simulator()
    import random

    faults = FaultParams(loss_prob=0.3)
    net, a, _b, _ia, inbox_b = make_pair(sim, faults=faults)
    net.faults.rng = random.Random(42)
    for i in range(50):
        a.send(1, "k", i, 10)
    sim.run(until=100_000)
    assert [m.payload for m in inbox_b] == list(range(50))
    registry = net.obs.registry
    assert registry.counter("net.retransmits", node=0).value \
        == a.retransmissions > 0
    assert registry.counter_total("net.retransmits") >= a.retransmissions


# --------------------------------------------------------------- reliable


def make_pair(sim, faults=None):
    params = NetParams(jitter_us=0.0)
    injector = FaultInjector(faults) if faults else None
    net = Network(sim, params, injector)
    inbox_a, inbox_b = [], []
    a = ReliableTransport(sim, net, 0, params, inbox_a.append)
    b = ReliableTransport(sim, net, 1, params, inbox_b.append)
    return net, a, b, inbox_a, inbox_b


def test_reliable_delivery_in_order():
    sim = Simulator()
    _net, a, _b, _ia, inbox_b = make_pair(sim)
    for i in range(5):
        a.send(1, "k", i, 10)
    sim.run(until=1_000)
    assert [m.payload for m in inbox_b] == [0, 1, 2, 3, 4]


def test_reliable_loopback():
    sim = Simulator()
    _net, a, _b, inbox_a, _ib = make_pair(sim)
    a.send(0, "k", "self", 10)
    sim.run(until=100)
    assert [m.payload for m in inbox_a] == ["self"]


def test_reliable_recovers_from_loss():
    sim = Simulator()
    import random

    faults = FaultParams(loss_prob=0.3)
    _net, a, _b, _ia, inbox_b = make_pair(sim, faults=faults)
    _net.faults.rng = random.Random(42)
    for i in range(50):
        a.send(1, "k", i, 10)
    sim.run(until=100_000)
    assert [m.payload for m in inbox_b] == list(range(50))
    assert a.retransmissions > 0


def test_reliable_suppresses_duplicates():
    sim = Simulator()
    faults = FaultParams(duplicate_prob=1.0)
    _net, a, _b, _ia, inbox_b = make_pair(sim, faults=faults)
    for i in range(10):
        a.send(1, "k", i, 10)
    sim.run(until=10_000)
    assert [m.payload for m in inbox_b] == list(range(10))


def test_reliable_reorders_back_in_order():
    sim = Simulator()
    faults = FaultParams(reorder_max_us=20.0)
    _net, a, _b, _ia, inbox_b = make_pair(sim, faults=faults)
    for i in range(30):
        a.send(1, "k", i, 10)
    sim.run(until=50_000)
    assert [m.payload for m in inbox_b] == list(range(30))


def test_reliable_gives_up_then_probes_slowly():
    # After max_retransmits the channel keeps its unacked buffer (the peer
    # may be partitioned, not dead) and falls back to slow probing.
    sim = Simulator()
    net, a, b, _ia, _ib = make_pair(sim)
    net.set_down(1)
    a.send(1, "k", "void", 10)
    sim.run(until=1_000_000)
    assert a.gave_up == 1
    assert a.unacked_count() == 1  # state retained for a possible heal
    # Probing is much slower than normal retransmission: about one probe
    # per probe_interval_us, not one per retransmit_timeout_us.
    params = NetParams()
    probes = a.obs.registry.counter("net.probes", node=0).value
    assert 0 < probes <= 1_000_000 / params.probe_interval_us + 1
    assert a.retransmissions <= params.max_retransmits


def test_reliable_resumes_after_partition_heals():
    # Regression for the give-up stall: a sender that exhausted its
    # retransmit budget during a partition must resynchronize and deliver
    # everything once the partition heals.
    sim = Simulator()
    net, a, _b, _ia, inbox_b = make_pair(sim)
    net.partition(0, 1)
    for i in range(5):
        a.send(1, "k", i, 10)
    # Long enough for the channel to give up (50 * 40us) and start probing.
    sim.run(until=100_000)
    assert a.gave_up == 1
    assert inbox_b == []
    net.heal(0, 1)
    a.send(1, "k", 5, 10)  # traffic after the heal must also arrive
    sim.run(until=200_000)
    assert [m.payload for m in inbox_b] == list(range(6))
    assert a.unacked_count() == 0


def test_reliable_discards_state_when_membership_removes_peer():
    sim = Simulator()
    net, a, _b, _ia, _ib = make_pair(sim)
    net.set_down(1)
    a.send(1, "k", "void", 10)
    sim.run(until=100_000)
    assert a.unacked_count() == 1
    a.on_peer_removed(1)
    assert a.unacked_count() == 0
    before = a.obs.registry.counter("net.probes", node=0).value
    sim.run(until=1_000_000)  # probe timer must be gone
    assert a.obs.registry.counter("net.probes", node=0).value == before


def test_reliable_stop_cancels_timers():
    sim = Simulator()
    net, a, _b, _ia, _ib = make_pair(sim)
    net.set_down(1)
    a.send(1, "k", "void", 10)
    a.stop()
    sim.run(until=1_000_000)
    assert a.retransmissions == 0


def test_piggybacked_acks_suppress_standalone():
    sim = Simulator()
    _net, a, b, inbox_a, inbox_b = make_pair(sim)
    # Chatty bidirectional traffic: acks should ride data messages.
    for i in range(20):
        a.send(1, "k", i, 10)
        b.send(0, "k", i, 10)
    sim.run(until=10_000)
    assert len(inbox_a) == len(inbox_b) == 20
    assert a.acks_sent + b.acks_sent <= 4
