"""Harness: metrics, tables, cluster assembly."""

import os

import pytest

from repro.harness.metrics import (
    LatencyRecorder,
    ThroughputMeter,
    cdf_points,
    percentile,
)
from repro.harness.tables import ascii_series, format_table, save_result
from repro.store.catalog import Catalog
from tests.conftest import make_cluster


def test_percentile_basic():
    data = list(range(1, 101))
    assert percentile(data, 50) == pytest.approx(50.5)
    assert percentile(data, 0) == 1
    assert percentile(data, 100) == 100


def test_percentile_interpolates():
    assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 120)


def test_cdf_points_monotone():
    points = cdf_points([5.0, 1.0, 3.0], points=10)
    values = [v for v, _f in points]
    fracs = [f for _v, f in points]
    assert values == sorted(values)
    assert fracs[0] == 0.0 and fracs[-1] == 1.0


def test_cdf_points_single_sample():
    points = cdf_points([4.2], points=10)
    assert all(v == 4.2 for v, _f in points)
    assert points[-1][1] == 1.0


def test_cdf_points_empty():
    assert cdf_points([]) == []


# ------------------------------------------------- property-based (stats)

from hypothesis import given  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

finite_floats = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)


@given(st.lists(finite_floats, min_size=2, max_size=200))
def test_percentile_matches_statistics_quantiles(data):
    """percentile() agrees with the stdlib's inclusive quantiles."""
    import statistics

    qs = statistics.quantiles(data, n=100, method="inclusive")
    for p, expected in zip(range(1, 100), qs):
        assert percentile(data, p) == pytest.approx(expected, rel=1e-9,
                                                    abs=1e-6)


@given(st.lists(finite_floats, min_size=1, max_size=200),
       st.floats(min_value=0.0, max_value=100.0))
def test_percentile_bounded_and_monotone(data, p):
    value = percentile(data, p)
    assert min(data) <= value <= max(data)
    # Monotone in p.
    if p < 100.0:
        assert value <= percentile(data, 100.0)
    if p > 0.0:
        assert value >= percentile(data, 0.0)


@given(finite_floats)
def test_percentile_single_sample_is_constant(x):
    for p in (0.0, 37.5, 50.0, 99.9, 100.0):
        assert percentile([x], p) == x


@given(st.lists(finite_floats, min_size=1, max_size=100),
       st.integers(min_value=2, max_value=50))
def test_cdf_points_properties(data, points):
    out = cdf_points(data, points=points)
    values = [v for v, _f in out]
    fracs = [f for _v, f in out]
    assert values == sorted(values)
    assert fracs == sorted(fracs)
    assert fracs[0] == 0.0 and fracs[-1] == 1.0
    assert values[0] == min(data) and values[-1] == max(data)


def test_throughput_meter_timeline():
    meter = ThroughputMeter(bin_us=1_000.0)
    for t in (100.0, 200.0, 1_500.0):
        meter.record(t)
    timeline = meter.timeline()
    assert timeline[0][1] == pytest.approx(2 / 0.001)
    assert timeline[1][1] == pytest.approx(1 / 0.001)
    assert meter.total == 3


def test_throughput_meter_rate():
    meter = ThroughputMeter()
    for _ in range(100):
        meter.record(10.0)
    assert meter.rate_tps(1_000_000.0) == pytest.approx(100.0)
    assert meter.rate_tps(0.0) == 0.0


def test_latency_recorder_summary():
    rec = LatencyRecorder()
    rec.extend(float(i) for i in range(1, 1001))
    summary = rec.summary()
    assert summary["count"] == 1000
    assert summary["mean_us"] == pytest.approx(500.5)
    assert summary["p999_us"] > summary["p99_us"] > summary["p50_us"]


def test_format_table_aligns():
    text = format_table(["a", "bb"], [(1, "x"), (22, "yy")], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_ascii_series_renders():
    art = ascii_series([(0.0, 1.0), (1.0, 5.0)], label="x")
    assert "x" in art
    assert "#" in art


def test_ascii_series_empty():
    assert "(no data)" in ascii_series([], label="empty")


def test_save_result_writes_json(tmp_path, monkeypatch):
    import repro.harness.tables as tables

    monkeypatch.setattr(tables, "results_dir", lambda: str(tmp_path))
    path = save_result("unit", {"a": 1})
    assert os.path.exists(path)


# --------------------------------------------------------------- assembly


def test_cluster_loads_objects_on_replicas(cluster3):
    for oid in range(cluster3.catalog.num_objects):
        replicas = cluster3.catalog.initial_replicas(oid)
        for h in cluster3.handles:
            if h.node_id in replicas.all_nodes():
                assert h.store.has(oid)
            else:
                assert not h.store.has(oid)


def test_cluster_directory_on_first_three(cluster6):
    for h in cluster6.handles:
        if h.node_id < 3:
            assert h.directory is not None
            assert len(h.directory) == cluster6.catalog.num_objects
        else:
            assert h.directory is None


def test_cluster_rejects_mismatched_catalog():
    catalog = Catalog(3)
    from repro.harness.zeus_cluster import ZeusCluster

    with pytest.raises(ValueError):
        ZeusCluster(4, catalog=catalog)


def test_owner_of_queries_directory(cluster3):
    assert cluster3.owner_of(0) == 0
    assert cluster3.owner_of(1) == 1


def test_total_committed_initially_zero(cluster3):
    assert cluster3.total_committed() == 0


def test_deterministic_runs_identical():
    def run_once(seed):
        cluster = make_cluster(3, seed=seed)
        api = cluster.handles[0].api
        trace = []

        def app():
            for oid in range(5):
                r = yield from api.execute_write(0, [oid, (oid + 1) % 5])
                trace.append((round(cluster.sim.now, 6), r.committed))

        cluster.spawn_app(0, 0, app())
        cluster.run(until=100_000)
        return trace, cluster.sim.events_executed

    assert run_once(7) == run_once(7)
    assert run_once(7) != run_once(8)
