"""Implementation-vs-model conformance replay of the ownership protocol."""

import pytest

from repro.harness.zeus_cluster import ZeusCluster
from repro.store.catalog import Catalog
from repro.verify.conformance import (
    TraceEvent,
    acquire_script,
    final_model_owner,
    record_ownership_trace,
    replay_trace,
)


def contended_run(seed):
    """Three directory replicas of one object (the model's topology);
    nodes 1 and 2 contend for ownership held by node 0."""
    catalog = Catalog(3, replication_degree=3)
    catalog.add_table("obj", 64)
    oid = catalog.create_object("obj", 0, owner=0)
    cluster = ZeusCluster(3, catalog=catalog, seed=seed)
    cluster.load(init_value=0)
    trace = record_ownership_trace(cluster, oid)
    cluster.spawn_app(1, 0, acquire_script(cluster, 1, oid))
    cluster.spawn_app(2, 0, acquire_script(cluster, 2, oid))
    cluster.run(until=5_000)
    return cluster, oid, trace


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_observed_trace_conforms_to_model(seed):
    cluster, oid, trace = contended_run(seed)
    assert trace, "no ownership messages recorded"
    kinds = {ev.kind for ev in trace}
    # A contended acquisition exercises the full protocol vocabulary.
    assert {"REQ", "INV", "ACK", "VAL"} <= kinds
    result = replay_trace(trace)
    assert result.ok, result.describe()
    assert result.steps == len(trace)


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_model_and_implementation_agree_on_owner(seed):
    cluster, oid, trace = contended_run(seed)
    impl_owner = cluster.owner_of(oid)
    assert impl_owner in (1, 2)  # somebody won the contention
    assert final_model_owner(trace) == impl_owner


def test_replay_rejects_forged_ack():
    _cluster, _oid, trace = contended_run(7)
    first_inv = next(i for i, ev in enumerate(trace) if ev.kind == "INV")
    ev = trace[first_inv]
    # An ACK for a timestamp the model never invalidated cannot be a
    # message the model produced.
    forged = TraceEvent("ACK", ev.dst, ev.requester, ev.requester,
                        (ev.ts[0] + 99, ev.ts[1]), ev.at)
    result = replay_trace(trace[:first_inv + 1] + [forged])
    assert not result.ok
    assert any("ACK not producible" in f for f in result.failures)
