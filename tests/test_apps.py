"""Legacy application ports: gateway, SCTP, Nginx, remote KV."""

import pytest

from repro.apps import (
    CellularGateway,
    NginxServer,
    OpenLoopSource,
    RemoteKvClient,
    RemoteKvServer,
    RequestQueue,
    SctpEndpoint,
    build_gateway_catalog,
    build_nginx_catalog,
    build_sctp_catalog,
    serve_queue,
    vanilla_packet_cost_us,
)
from repro.harness.metrics import ThroughputMeter
from repro.harness.zeus_cluster import ZeusCluster
from repro.sim.params import SimParams


def make_cluster(catalog, nodes=2):
    params = SimParams().scaled_threads(app=2, worker=2)
    cluster = ZeusCluster(nodes, params=params, catalog=catalog)
    cluster.load(init_value=0)
    return cluster


# ------------------------------------------------------------- remote kv


def test_remote_kv_set_get_roundtrip():
    catalog = build_gateway_catalog(2, 10)
    cluster = make_cluster(catalog)
    RemoteKvServer(cluster.nodes[1])
    client = RemoteKvClient(cluster.nodes[0], 1)
    got = []

    def app():
        yield from client.set("k", "v")
        value = yield from client.get("k")
        got.append(value)

    cluster.spawn_app(0, 0, app())
    cluster.run(until=10_000)
    assert got == ["v"]


def test_remote_kv_blocking_latency_is_kernel_scale():
    catalog = build_gateway_catalog(2, 10)
    cluster = make_cluster(catalog)
    RemoteKvServer(cluster.nodes[1])
    client = RemoteKvClient(cluster.nodes[0], 1)
    times = []

    def app():
        start = cluster.sim.now
        yield from client.get("missing")
        times.append(cluster.sim.now - start)

    cluster.spawn_app(0, 0, app())
    cluster.run(until=10_000)
    assert times[0] > 50.0  # kernel stack both ways >> DPDK fabric


# --------------------------------------------------------------- gateway


def test_gateway_local_mode_serves():
    catalog = build_gateway_catalog(2, 50)
    cluster = make_cluster(catalog)
    gw = CellularGateway("local", 50)
    done = []

    def app():
        yield from gw.process_request(7)
        done.append(gw.served)

    cluster.spawn_app(0, 0, app())
    cluster.run(until=10_000)
    assert done == [1]


def test_gateway_zeus_mode_commits_context():
    catalog = build_gateway_catalog(2, 50)
    cluster = make_cluster(catalog)
    gw = CellularGateway("zeus", 50, zeus=cluster.handles[0], catalog=catalog)

    def app():
        yield from gw.process_request(3)

    cluster.spawn_app(0, 0, app())
    cluster.run(until=100_000)
    assert gw.served == 1
    oid = catalog.oid("ue_ctx", 3)
    assert cluster.handles[0].api.peek(oid) == 1


def test_gateway_zeus_state_replicated():
    catalog = build_gateway_catalog(2, 50)
    cluster = make_cluster(catalog)
    gw = CellularGateway("zeus", 50, zeus=cluster.handles[0], catalog=catalog)

    def app():
        yield from gw.process_request(0)  # user 0's rows live on node 0

    cluster.spawn_app(0, 0, app())
    cluster.run(until=100_000)
    oid = catalog.oid("ue_ctx", 0)
    assert cluster.handles[1].store.get(oid).t_version == 1


def test_gateway_mode_validation():
    with pytest.raises(ValueError):
        CellularGateway("bogus", 10)
    with pytest.raises(ValueError):
        CellularGateway("zeus", 10)  # missing handle/catalog
    with pytest.raises(ValueError):
        CellularGateway("redis", 10)  # missing client


# ------------------------------------------------------------------ sctp


def test_sctp_vanilla_cost_grows_with_size():
    assert vanilla_packet_cost_us(16_384) > vanilla_packet_cost_us(512)


def test_sctp_vanilla_endpoint_counts_packets():
    catalog = build_sctp_catalog(2, 1)
    cluster = make_cluster(catalog)
    endpoint = SctpEndpoint(0)  # no zeus: vanilla

    def app():
        for _ in range(5):
            yield from endpoint.send_packet(1_000)
        yield from endpoint.receive_packet(1_000)
        yield from endpoint.on_timer()

    cluster.spawn_app(0, 0, app())
    cluster.run(until=100_000)
    assert endpoint.packets_tx == 5
    assert endpoint.packets_rx == 1
    assert endpoint.timer_events == 1
    assert endpoint.bytes_tx == 5_000


def test_sctp_zeus_replicates_connection_state():
    catalog = build_sctp_catalog(2, 1)
    cluster = make_cluster(catalog)
    endpoint = SctpEndpoint(0, zeus=cluster.handles[0], catalog=catalog)

    def app():
        for _ in range(3):
            yield from endpoint.send_packet(1_000)

    cluster.spawn_app(0, 0, app())
    cluster.run(until=100_000)
    oid = catalog.oid("sctp_state", 0)
    assert cluster.handles[1].store.get(oid).t_version == 3


def test_sctp_zeus_slower_than_vanilla():
    catalog = build_sctp_catalog(2, 2)
    cluster = make_cluster(catalog)
    vanilla = SctpEndpoint(0)
    zeus = SctpEndpoint(1, zeus=cluster.handles[0], catalog=catalog)
    times = {}

    def run(tag, ep):
        start = cluster.sim.now
        for _ in range(10):
            yield from ep.send_packet(4_096)
        times[tag] = cluster.sim.now - start

    cluster.spawn_app(0, 0, run("vanilla", vanilla))
    cluster.run(until=100_000)
    cluster.spawn_app(0, 1, run("zeus", zeus))
    cluster.run(until=200_000)
    assert times["zeus"] > times["vanilla"]


# ----------------------------------------------------------------- nginx


def test_nginx_sticky_session_routing():
    catalog = build_nginx_catalog(2, 100)
    cluster = make_cluster(catalog)
    server = NginxServer("zeus", backends=4, zeus=cluster.handles[0],
                         catalog=catalog)
    dests = []

    def app():
        d1 = yield from server.handle_request(5)
        d2 = yield from server.handle_request(5)
        dests.append((d1, d2))

    cluster.spawn_app(0, 0, app())
    cluster.run(until=100_000)
    d1, d2 = dests[0]
    assert d1 == d2
    assert server.sessions_created == 1
    assert server.forwarded == 2


def test_nginx_session_visible_to_other_instance():
    catalog = build_nginx_catalog(2, 100)
    cluster = make_cluster(catalog)
    s0 = NginxServer("zeus", 4, zeus=cluster.handles[0], catalog=catalog)
    s1 = NginxServer("zeus", 4, zeus=cluster.handles[1], catalog=catalog)
    dests = []

    def first():
        d = yield from s0.handle_request(7)
        dests.append(d)

    def second():
        yield 5_000.0  # after replication settles
        d = yield from s1.handle_request(7)
        dests.append(d)

    cluster.spawn_app(0, 0, first())
    cluster.spawn_app(1, 0, second())
    cluster.run(until=100_000)
    assert len(dests) == 2
    assert dests[0] == dests[1]


def test_nginx_memory_mode_matches_interface():
    catalog = build_nginx_catalog(2, 10)
    cluster = make_cluster(catalog)
    server = NginxServer("memory", backends=2)
    out = []

    def app():
        d = yield from server.handle_request(1)
        out.append(d)

    cluster.spawn_app(0, 0, app())
    cluster.run(until=10_000)
    assert out and 0 <= out[0] < 2


# ---------------------------------------------------------------- driver


def test_open_loop_source_rate():
    catalog = build_nginx_catalog(2, 10)
    cluster = make_cluster(catalog)
    queue = RequestQueue(cluster.sim)
    source = OpenLoopSource(cluster.sim, 100_000.0, [queue], lambda r: 1,
                            rng=cluster.rng.stream("arr"))
    source.start()
    cluster.run(until=100_000)  # 0.1s at 100k tps ~ 10k arrivals
    assert 8_000 < queue.enqueued < 12_000


def test_request_queue_backlog_drops():
    catalog = build_nginx_catalog(2, 10)
    cluster = make_cluster(catalog)
    queue = RequestQueue(cluster.sim)
    queue.max_backlog = 5
    for i in range(10):
        queue.push(i)
    assert len(queue) == 5
    assert queue.dropped == 5


def test_serve_queue_processes_fifo():
    catalog = build_nginx_catalog(2, 10)
    cluster = make_cluster(catalog)
    queue = RequestQueue(cluster.sim)
    served = []

    def handler(item):
        yield 1.0
        served.append(item)

    for i in range(5):
        queue.push(i)
    meter = ThroughputMeter()
    cluster.spawn_app(0, 0, serve_queue(cluster.sim, queue, handler,
                                        meter=meter, stop_at=1_000.0))
    cluster.run(until=1_000)
    assert served == [0, 1, 2, 3, 4]
    assert meter.total == 5
