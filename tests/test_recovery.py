"""Node recovery & rejoin: restart lifecycle, state transfer, epoch
fencing, re-replication, and the audits that gate them."""

import pytest

from repro.chaos.schedule import CrashEvent, FaultSchedule, RecoverEvent
from repro.hermes.protocol import HermesReplica
from repro.net.message import Message
from repro.store.meta import Ots
from repro.verify.audit import audit_degree, audit_rejoin, audit_run, CommitLedger
from tests.conftest import make_cluster


def _recovered_cluster(num_nodes=4, objects=8, crash_node=1,
                       crash_at=3_000.0, recover_at=15_000.0, seed=0,
                       until=60_000.0):
    """A cluster that went through one full cold crash→rejoin cycle."""
    cluster = make_cluster(num_nodes, objects=objects, fast_failover=True,
                           seed=seed)
    cluster.start_membership()
    cluster.crash(crash_node, at=crash_at)
    cluster.recover(crash_node, at=recover_at)
    cluster.run(until=until)
    return cluster


# ======================================================================
# Restart lifecycle
# ======================================================================

def test_restart_requires_a_crash_first():
    cluster = make_cluster(3)
    with pytest.raises(RuntimeError, match="alive"):
        cluster.nodes[1].restart()


def test_rejoin_bumps_incarnation_and_epoch():
    cluster = _recovered_cluster()
    node = cluster.nodes[1]
    view = cluster.membership.view
    assert node.alive and not node.joining
    assert node.incarnation == 2
    assert view.live == frozenset({0, 1, 2, 3})
    assert view.epoch == 3  # boot view + eviction + admission
    assert view.incarnations[1] == 2
    assert node.epoch == 3
    # Every peer learned the fresh incarnation from the admit view.
    for peer in (0, 2, 3):
        assert cluster.nodes[peer].peer_incarnations[1] == 2


def test_membership_prunes_state_and_ignores_nonmember_heartbeats():
    """Eviction drops the detector's per-node state, and a zombie
    heartbeat must not resurrect a lease the view no longer grants."""
    cluster = make_cluster(3, fast_failover=True)
    cluster.start_membership()
    cluster.run(until=1_000.0)
    service = cluster.membership
    assert 2 in service._last_heartbeat
    cluster.crash(2)
    cluster.run(until=30_000.0)
    assert 2 not in service.view.live
    assert 2 not in service._last_heartbeat
    epoch = service.view.epoch
    service._record_heartbeat(2)  # in-flight / zombie heartbeat
    assert 2 not in service._last_heartbeat
    cluster.run(until=60_000.0)
    assert service.view.epoch == epoch


# ======================================================================
# Fencing
# ======================================================================

def test_zombie_incarnation_traffic_is_fenced():
    cluster = _recovered_cluster()
    donor = cluster.nodes[0]
    assert donor.peer_incarnations[1] == 2
    before = donor._c_fenced.value
    chan = donor.transport._recv.get(1)
    expected_before = chan.expected if chan is not None else None
    zombie = Message(1, 0, "own.recovered", (donor.epoch, 1), 16)
    zombie.inc = 1  # the dead incarnation
    zombie.seq = expected_before or 0
    donor.transport._on_wire(zombie)
    assert donor._c_fenced.value == before + 1
    # Channel state untouched: the fence fires before any bookkeeping.
    chan_after = donor.transport._recv.get(1)
    assert (chan_after.expected if chan_after else None) == expected_before


def test_traffic_addressed_to_dead_incarnation_is_fenced():
    """A probe retransmit created before the sender learned of the restart
    carries the old destination incarnation and must be dropped."""
    cluster = _recovered_cluster()
    rejoiner = cluster.nodes[1]
    assert rejoiner.incarnation == 2
    before = rejoiner._c_fenced.value
    chan = rejoiner.transport._recv.get(0)
    expected_before = chan.expected if chan is not None else None
    stale = Message(0, 1, "rc.val", None, 16)
    stale.inc = 1       # sender never restarted: its incarnation is fine
    stale.dst_inc = 1   # but it addressed our dead predecessor
    stale.seq = expected_before or 0
    rejoiner.transport._on_wire(stale)
    assert rejoiner._c_fenced.value == before + 1
    chan_after = rejoiner.transport._recv.get(0)
    assert (chan_after.expected if chan_after else None) == expected_before


def test_restarted_node_quarantines_traffic_until_admitted():
    """Between restart and the admit view, *everything* inbound is
    dropped — in-flight traffic can only target the dead incarnation, and
    consuming it would desynchronize the fresh receive channels against
    peers that reset at the admit view."""
    cluster = make_cluster(3, fast_failover=True)
    cluster.start_membership()
    cluster.crash(2, at=2_000.0)
    cluster.run(until=20_000.0)  # eviction installed
    node = cluster.nodes[2]
    node.restart()
    cluster.handles[2].recovery.on_restart(2_000.0)
    assert node.joining
    stray = Message(0, 2, "rc.val", None, 16)
    stray.inc = 1
    stray.seq = 0
    node.transport._on_wire(stray)
    assert node._c_quarantined.value == 1
    assert 0 not in node.transport._recv
    cluster.membership.admit(2)
    cluster.run(until=60_000.0)
    assert not node.joining
    assert 2 in cluster.membership.view.live


# ======================================================================
# State transfer + degree repair
# ======================================================================

def test_state_transfer_rebuilds_store_directory_and_degree():
    cluster = _recovered_cluster(crash_node=1)
    handle = cluster.handles[1]
    # Every replica set naming the rejoiner is backed by a stored object,
    # and its directory shard is complete.
    assert audit_rejoin(cluster) == []
    assert audit_degree(cluster) == []
    counters = handle.recovery.counters.as_dict()
    assert counters["rejoins"] == 1
    assert counters["transfer_chunks"] > 0
    assert counters["transfer_bytes"] > 0
    assert counters["objects_repaired"] > 0
    hists = cluster.obs.registry.snapshot()["histograms"]
    assert hists["recovery.mttr_us{node=1}"]["count"] == 1
    assert hists["recovery.catchup_us{node=1}"]["count"] == 1


def test_refetch_restores_value_for_still_listed_replica():
    """A replica the directory never saw leave re-fetches its bytes
    directly instead of a no-op ADD_READER."""
    cluster = make_cluster(4, objects=4)
    cluster.start_membership()
    cluster.run(until=1_000.0)
    oid = 0
    replicas = cluster.replicas_of(oid)
    victim = sorted(n for n in replicas.all_nodes() if n != replicas.owner)[0]
    for h in cluster.handles:
        obj = h.store.get(oid)
        if obj is not None:
            obj.t_data, obj.t_version = 42, 7
    handle = cluster.handles[victim]
    handle.store.drop(oid)
    recovery = handle.recovery
    recovery._entries[oid] = (cluster.handles[replicas.owner].store
                              .get(oid).o_ts, replicas)
    cluster.nodes[victim].spawn(recovery._refetch_with_retry(oid))
    cluster.run(until=10_000.0)
    obj = handle.store.get(oid)
    assert obj is not None and (obj.t_data, obj.t_version) == (42, 7)
    assert recovery.counters.as_dict()["objects_refetched"] == 1


def test_rejoin_audit_detects_stale_and_missing_replicas():
    cluster = _recovered_cluster(crash_node=1)
    handle = cluster.handles[1]
    assert audit_rejoin(cluster) == []
    # A stale value on the rejoiner is flagged...
    victim_obj = next(iter(handle.store))
    victim_obj.t_version -= 1
    victim_obj.t_data = "stale"
    assert any("live replica holds" in p for p in audit_rejoin(cluster))
    victim_obj.t_version += 1
    victim_obj.t_data = 0
    # ...so is a replica-set listing with no backing copy...
    handle.store.drop(victim_obj.oid)
    assert any("stores no copy" in p for p in audit_rejoin(cluster))
    # ...and an incomplete directory shard.
    if handle.directory is not None:
        shard_oid = next(oid for oid, _e in handle.directory.items())
        handle.directory._entries.pop(shard_oid)
        assert any("state transfer incomplete" in p
                   for p in audit_rejoin(cluster))


def test_degree_audit_detects_unrepaired_replica_set():
    cluster = _recovered_cluster(crash_node=1)
    assert audit_degree(cluster) == []
    # Shrink one replica set below target on every directory host.
    oid = 0
    for h in cluster.handles:
        if h.directory is None:
            continue
        entry = h.directory.get(oid)
        if entry is not None and entry.replicas is not None:
            reader = sorted(entry.replicas.readers)[0]
            entry.replicas = entry.replicas.without(reader)
    assert any("replication degree" in p for p in audit_degree(cluster))


# ======================================================================
# Overlapping slowdown windows (satellite: window-aware restores)
# ======================================================================

def test_overlapping_slowdown_windows_nest():
    cluster = make_cluster(3)
    node = cluster.nodes[1]
    failures = cluster.failures
    failures.slow_at(node, 2.0, 1_000.0, 5_000.0)
    failures.slow_at(node, 4.0, 2_000.0, 8_000.0)
    samples = {}
    for t in (1_500.0, 3_000.0, 6_000.0, 9_000.0):
        cluster.sim.call_at(t, lambda t=t: samples.__setitem__(t, node.slowdown))
    cluster.run(until=10_000.0)
    # The early window's end restores the *inner* window's factor, not 1.0.
    assert samples == {1_500.0: 2.0, 3_000.0: 4.0, 6_000.0: 4.0, 9_000.0: 1.0}


def test_slowdown_window_straddling_a_restart_is_discarded():
    cluster = make_cluster(4, fast_failover=True)
    cluster.start_membership()
    node = cluster.nodes[1]
    cluster.failures.slow_at(node, 8.0, 1_000.0, 40_000.0)
    cluster.crash(1, at=2_000.0)
    cluster.recover(1, at=15_000.0)
    cluster.run(until=60_000.0)
    # The reboot came back at full speed and the pending end was a no-op.
    assert node.slowdown == 1.0


# ======================================================================
# Schedule + generator (satellite: crash→recover pairs)
# ======================================================================

def test_schedule_rejects_recovery_without_crash():
    with pytest.raises(ValueError, match="recovery without an earlier crash"):
        FaultSchedule([RecoverEvent(at_us=5_000.0, node=0)]).validate(3)
    with pytest.raises(ValueError, match="recovery without an earlier crash"):
        FaultSchedule([CrashEvent(at_us=5_000.0, node=0),
                       RecoverEvent(at_us=3_000.0, node=0)]).validate(3)
    with pytest.raises(ValueError, match="recovery without an earlier crash"):
        FaultSchedule([CrashEvent(at_us=1_000.0, node=0),
                       RecoverEvent(at_us=2_000.0, node=0),
                       RecoverEvent(at_us=3_000.0, node=0)]).validate(3)
    sched = FaultSchedule([CrashEvent(at_us=1_000.0, node=0),
                           RecoverEvent(at_us=2_000.0, node=0)])
    sched.validate(3)
    assert sched.crash_nodes == (0,)
    assert sched.recover_nodes == (0,)
    assert sched.has_recovery


def test_generator_emits_crash_recover_pairs_deterministically():
    from repro.chaos.generator import generate_schedule
    horizon = 30_000.0
    seen_recovery = False
    for seed in range(20):
        sched = generate_schedule(4, horizon, seed=seed, difficulty=2,
                                  require_crash=True)
        again = generate_schedule(4, horizon, seed=seed, difficulty=2,
                                  require_crash=True)
        assert sched.signature() == again.signature()
        assert sched.has_recovery  # difficulty >= 2 pairs every crash
        seen_recovery = True
        crash = next(e for e in sched if isinstance(e, CrashEvent))
        recover = next(e for e in sched if isinstance(e, RecoverEvent))
        assert recover.node == crash.node
        assert crash.at_us < recover.at_us
        assert recover.at_us >= horizon * 0.72  # after every partition heals
    assert seen_recovery
    # Difficulty 1 and allow_recovery=False never emit recoveries.
    for seed in range(10):
        assert not generate_schedule(4, horizon, seed=seed, difficulty=1,
                                     require_crash=True).has_recovery
        assert not generate_schedule(4, horizon, seed=seed, difficulty=2,
                                     require_crash=True,
                                     allow_recovery=False).has_recovery


# ======================================================================
# Hermes snapshot transfer (the same rejoin idea, baseline protocol)
# ======================================================================

def test_hermes_snapshot_bootstraps_a_reset_replica():
    cluster = make_cluster(3)
    replicas = [HermesReplica(cluster.nodes[n], (0, 1, 2)) for n in (0, 1, 2)]
    replicas[0].write("a", "v1")
    replicas[1].write("b", "v2")
    cluster.run(until=10_000.0)
    replicas[2].reset()
    assert replicas[2].read("a") is None
    applied = replicas[2].apply_snapshot(replicas[0].export_snapshot())
    assert applied == 2
    assert replicas[2].read("a") == "v1" and replicas[2].read("b") == "v2"
    # Timestamp guard: re-applying (or applying a stale snapshot) is a no-op.
    assert replicas[2].apply_snapshot(replicas[0].export_snapshot()) == 0


# ======================================================================
# End-to-end: audited chaos run with a crash→recover pair
# ======================================================================

def test_chaos_run_with_recovery_passes_all_audits():
    from repro.chaos.campaign import CampaignConfig, run_chaos_once
    cfg = CampaignConfig(num_schedules=1, seeds=(0,), difficulty=2,
                         duration_us=20_000.0, quiesce_us=25_000.0)
    sched = FaultSchedule([CrashEvent(at_us=4_000.0, node=2),
                           RecoverEvent(at_us=14_000.0, node=2)],
                          name="rejoin-smoke")
    r1 = run_chaos_once(sched, seed=0, cfg=cfg)
    assert r1.ok, r1.audit.problems()
    assert any("recover" in e for e in r1.timeline)
    # The whole cycle — including rejoin — is deterministic.
    r2 = run_chaos_once(sched, seed=0, cfg=cfg)
    assert r1.digest() == r2.digest()


# ======================================================================
# Donor selection when every listed replica is quarantined
# ======================================================================

def _listed_oid_for(cluster, node_id):
    """An object whose replica set includes ``node_id``."""
    for oid in range(cluster.catalog.num_objects):
        replicas = cluster.replicas_of(oid)
        if replicas is not None and node_id in replicas.all_nodes():
            return oid, replicas
    raise AssertionError("no object lists the node")


def test_refetch_gives_up_cleanly_when_all_listed_replicas_quarantined():
    """A still-listed node refetching a value finds every other listed
    replica quarantined: the refetch must give up without messaging the
    dead (repair_failed), not spin or crash — after a full-cluster outage
    this is the normal picture, not a corner."""
    cluster = make_cluster(4, objects=8, fast_failover=True)
    cluster.start_membership()
    cluster.run(until=1_000.0)
    me = 3
    oid, replicas = _listed_oid_for(cluster, me)
    others = sorted(n for n in replicas.all_nodes() if n != me)
    for n in others:
        cluster.crash(n)
    cluster.run(until=12_000.0)  # detection: all other replicas evicted
    h = cluster.handles[me]
    assert all(n not in h.node.live_nodes for n in others)
    rec = h.recovery
    # The post-restart picture: the entry is known, the bytes are gone.
    obj = h.store.get(oid)
    rec._entries[oid] = (obj.o_ts if obj is not None else Ots(0, 0), replicas)
    h.store.drop(oid)
    failed_before = rec.counters.get("repair_failed", 0)
    h.node.spawn(rec._refetch_with_retry(oid), name="refetch-test")
    cluster.run(until=cluster.sim.now + 30_000.0)
    assert rec.counters.get("repair_failed", 0) == failed_before + 1
    assert not h.store.has(oid)


def test_begin_transfer_without_live_donors_finishes_gracefully():
    """State transfer with zero live donors (the sole-survivor /
    everyone-quarantined case) must complete immediately and still run
    the repair pass, leaving no pending-donor state behind."""
    cluster = make_cluster(4, objects=8, fast_failover=True)
    cluster.start_membership()
    cluster.run(until=1_000.0)
    rec = cluster.handles[2].recovery
    rec._begin_transfer(frozenset({2}))
    assert not rec._pending_donors
    cluster.run(until=2_000.0)  # the spawned repair pass drains
    assert rec._transfer_span is None
