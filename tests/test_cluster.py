"""Nodes, membership with leases/epochs, failure injection."""

import pytest

from repro.cluster.node import Node
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.params import NetParams, SimParams
from tests.conftest import make_cluster


def make_nodes(n=3, **kw):
    sim = Simulator()
    params = SimParams().with_(**kw) if kw else SimParams()
    net = Network(sim, NetParams(jitter_us=0.0))
    nodes = [Node(sim, i, params, net) for i in range(n)]
    return sim, net, nodes


def test_node_handler_dispatch():
    sim, _net, nodes = make_nodes(2)
    got = []
    nodes[1].register_handler("ping", lambda m: got.append(m.payload))
    nodes[0].send(1, "ping", "hello", 16)
    sim.run(until=1_000)
    assert got == ["hello"]


def test_node_duplicate_handler_rejected():
    _sim, _net, nodes = make_nodes(1)
    nodes[0].register_handler("k", lambda m: None)
    with pytest.raises(ValueError):
        nodes[0].register_handler("k", lambda m: None)


def test_node_unknown_kind_raises():
    sim, _net, nodes = make_nodes(2)
    nodes[0].send(1, "mystery", None, 8)
    with pytest.raises(KeyError):
        sim.run(until=1_000)


def test_handler_cost_delays_dispatch():
    sim, _net, nodes = make_nodes(2)
    times = []
    nodes[1].register_handler("slow", lambda m: times.append(sim.now),
                              cost=50.0)
    nodes[1].register_handler("fast", lambda m: times.append(sim.now))
    nodes[0].send(1, "slow", None, 8)
    sim.run(until=1_000)
    assert times[0] > 50.0


def test_handler_cost_callable():
    sim, _net, nodes = make_nodes(2)
    times = []
    nodes[1].register_handler("var", lambda m: times.append(sim.now),
                              cost=lambda payload: payload * 10.0)
    nodes[0].send(1, "var", 5, 8)
    sim.run(until=1_000)
    assert times[0] > 50.0


def test_crashed_node_ignores_everything():
    sim, _net, nodes = make_nodes(2)
    got = []
    nodes[1].register_handler("k", lambda m: got.append(1))
    nodes[1].crash()
    nodes[0].send(1, "k", None, 8)
    sim.run(until=10_000)
    assert got == []
    assert not nodes[1].alive


def test_crash_kills_spawned_processes():
    sim, _net, nodes = make_nodes(1)
    seen = []

    def proc():
        yield 100.0
        seen.append("alive")

    nodes[0].spawn(proc())
    sim.call_after(10.0, nodes[0].crash)
    sim.run()
    assert seen == []


def test_view_listener_called_once_per_epoch():
    sim, _net, nodes = make_nodes(1)
    calls = []
    nodes[0].add_view_listener(lambda e, live: calls.append(e))
    nodes[0].on_view_change(2, frozenset({0}))
    nodes[0].on_view_change(2, frozenset({0}))  # duplicate ignored
    nodes[0].on_view_change(3, frozenset({0}))
    assert calls == [2, 3]


def test_counters():
    _sim, _net, nodes = make_nodes(1)
    nodes[0].count("x")
    nodes[0].count("x", 2)
    assert nodes[0].counters["x"] == 3


# ------------------------------------------------------------- membership


def test_membership_initial_view_everyone_live():
    cluster = make_cluster(3)
    for node in cluster.nodes:
        assert node.epoch == 1
        assert node.live_nodes == frozenset({0, 1, 2})


def test_membership_detects_crash_after_lease():
    cluster = make_cluster(4, fast_failover=True)
    cluster.start_membership()
    cluster.crash(3, at=500.0)
    cluster.run(until=500.0)
    assert cluster.membership.view.epoch == 1  # lease not yet expired
    cluster.run(until=30_000.0)
    assert cluster.membership.view.epoch == 2
    assert cluster.membership.view.live == frozenset({0, 1, 2})
    for nid in (0, 1, 2):
        assert cluster.nodes[nid].epoch == 2


def test_membership_detection_waits_for_lease():
    cluster = make_cluster(3, fast_failover=True)
    cluster.start_membership()
    cluster.crash(2, at=100.0)
    cluster.run(until=30_000.0)
    views = cluster.membership.view_history
    assert len(views) == 2
    # Installed no earlier than detection + full lease.
    detect_floor = 100.0 + cluster.params.lease_us
    assert cluster.membership.view_history[-1].epoch == 2
    assert cluster.sim.now >= detect_floor


def test_membership_two_crashes_two_epochs():
    cluster = make_cluster(5, fast_failover=True)
    cluster.start_membership()
    cluster.crash(4, at=100.0)
    cluster.crash(3, at=15_000.0)
    cluster.run(until=60_000.0)
    assert cluster.membership.view.live == frozenset({0, 1, 2})
    assert cluster.membership.view.epoch >= 2


def test_force_remove_helper():
    cluster = make_cluster(3)
    cluster.membership.force_remove(2)
    cluster.run(until=100.0)
    assert cluster.nodes[0].epoch == 2
    assert cluster.nodes[0].live_nodes == frozenset({0, 1})


def test_failure_injector_records():
    cluster = make_cluster(3)
    cluster.crash(1, at=50.0)
    cluster.run(until=100.0)
    assert cluster.failures.crashed == [(50.0, 1)]
    assert not cluster.nodes[1].alive
