"""Hermes replication and the locality-enforcing load balancer."""

import pytest

from repro.hermes.protocol import HermesReplica
from repro.lb.balancer import LoadBalancer
from tests.conftest import make_cluster


def make_hermes(cluster, nodes=(0, 1, 2)):
    return [HermesReplica(cluster.nodes[n], tuple(nodes)) for n in nodes]


def test_hermes_write_replicates_everywhere():
    cluster = make_cluster(3)
    replicas = make_hermes(cluster)
    replicas[0].write("k", "v1")
    cluster.run(until=10_000)
    assert all(r.read("k") == "v1" for r in replicas)


def test_hermes_any_replica_coordinates():
    cluster = make_cluster(3)
    replicas = make_hermes(cluster)
    replicas[2].write("k", "from-2")
    cluster.run(until=10_000)
    assert replicas[0].read("k") == "from-2"


def test_hermes_read_returns_none_while_invalid():
    cluster = make_cluster(3)
    replicas = make_hermes(cluster)
    replicas[0].write("k", "v")
    # Before any events run, replica 0 has applied its own INV: invalid.
    assert replicas[0].read("k") is None
    cluster.run(until=10_000)
    assert replicas[0].read("k") == "v"


def test_hermes_concurrent_writes_converge():
    cluster = make_cluster(3)
    replicas = make_hermes(cluster)
    replicas[0].write("k", "a")
    replicas[1].write("k", "b")
    cluster.run(until=50_000)
    values = {r.read("k") for r in replicas}
    assert len(values) == 1
    assert values.pop() in ("a", "b")


def test_hermes_timestamps_resolve_by_node_id():
    cluster = make_cluster(3)
    replicas = make_hermes(cluster)
    # Same version number from two coordinators: higher node id wins.
    replicas[0].write("k", "low")
    replicas[2].write("k", "high")
    cluster.run(until=50_000)
    assert all(r.read("k") == "high" for r in replicas)


def test_hermes_write_future_completes():
    cluster = make_cluster(3)
    replicas = make_hermes(cluster)
    fut = replicas[0].write("k", 1)
    cluster.run(until=10_000)
    assert fut.done()


def test_hermes_requires_member_node():
    cluster = make_cluster(3)
    with pytest.raises(ValueError):
        HermesReplica(cluster.nodes[0], (1, 2))


def test_hermes_survives_replica_crash():
    cluster = make_cluster(3, fast_failover=True)
    cluster.start_membership()
    replicas = make_hermes(cluster)
    cluster.crash(2, at=100.0)
    cluster.run(until=60_000)
    fut = replicas[0].write("k", "post-crash")
    cluster.run(until=120_000)
    assert fut.done()
    assert replicas[1].read("k") == "post-crash"


# ----------------------------------------------------------------- LB


def make_lb(cluster):
    return LoadBalancer(make_hermes(cluster), num_nodes=3)


def test_lb_sticky_routing():
    cluster = make_cluster(3)
    lb = make_lb(cluster)
    first = lb.route("user-1")
    cluster.run(until=1_000)
    for _ in range(5):
        assert lb.route("user-1") == first


def test_lb_spreads_keys():
    cluster = make_cluster(3)
    lb = make_lb(cluster)
    destinations = {lb.route(f"key-{i}") for i in range(60)}
    assert destinations == {0, 1, 2}


def test_lb_repin_overrides():
    cluster = make_cluster(3)
    lb = make_lb(cluster)
    lb.route("k")
    lb.repin("k", 2)
    cluster.run(until=1_000)
    assert lb.route("k") == 2


def test_lb_scale_in_moves_keys_off_inactive_nodes():
    cluster = make_cluster(3)
    lb = make_lb(cluster)
    keys = [f"k{i}" for i in range(30)]
    for k in keys:
        lb.route(k)
    cluster.run(until=1_000)
    lb.set_active([0])
    for k in keys:
        assert lb.route(k) == 0


def test_lb_requires_active_nodes():
    cluster = make_cluster(3)
    lb = make_lb(cluster)
    with pytest.raises(ValueError):
        lb.set_active([])


def test_lb_in_path_route_request():
    cluster = make_cluster(3)
    lb = make_lb(cluster)
    dests = []

    def app():
        d1 = yield from lb.route_request(0, "cookie")
        d2 = yield from lb.route_request(1, "cookie")
        dests.append((d1, d2))

    cluster.spawn_app(0, 0, app())
    cluster.run(until=10_000)
    d1, d2 = dests[0]
    assert d1 == d2  # sticky across ingress points


def test_lb_hit_miss_counters():
    cluster = make_cluster(3)
    lb = make_lb(cluster)
    lb.route("a")
    cluster.run(until=1_000)
    lb.route("a")
    assert lb.counters["misses"] == 1
    assert lb.counters["hits"] == 1
