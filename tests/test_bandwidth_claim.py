"""§1/§8.2 claim: Zeus outperforms "while using less network bandwidth".

Zeus replicates per *transaction* (one R-INV per follower carrying all the
modified objects, acks batched, VALs piggybacked/batched), while the
distributed-commit baseline sends per-object read/lock/validate/log/commit
RPCs.  At equal workload, Zeus should move fewer bytes per committed
transaction.
"""

from repro.baselines import FASST, BaselineCluster
from repro.harness.zeus_cluster import ZeusCluster
from repro.sim.params import SimParams
from repro.workloads import (
    SmallbankWorkload,
    run_baseline_workload,
    run_zeus_workload,
)

DURATION = 4_000.0


def _zeus_bytes_per_txn(remote_frac: float):
    wl = SmallbankWorkload(3, accounts_per_node=800, remote_frac=remote_frac)
    params = SimParams().scaled_threads(app=2, worker=2)
    cluster = ZeusCluster(3, params=params, catalog=wl.catalog)
    cluster.load(init_value=100)
    stats = run_zeus_workload(cluster, wl.spec_for, duration_us=DURATION,
                              threads=2)
    return cluster.network.total_bytes / max(1, stats.committed), stats


def _baseline_bytes_per_txn(remote_frac: float):
    wl = SmallbankWorkload(3, accounts_per_node=800, remote_frac=remote_frac,
                           track_migration=False)
    params = SimParams().scaled_threads(app=2, worker=2)
    cluster = BaselineCluster(3, FASST, params=params, catalog=wl.catalog)
    cluster.load(100)
    stats = run_baseline_workload(cluster, wl.spec_for, duration_us=DURATION,
                                  threads=2)
    return cluster.network.total_bytes / max(1, stats.committed), stats


def test_zeus_uses_less_bandwidth_per_txn_at_locality():
    zeus_bytes, zstats = _zeus_bytes_per_txn(0.01)
    base_bytes, bstats = _baseline_bytes_per_txn(0.01)
    assert zstats.committed > 1_000 and bstats.committed > 1_000
    assert zeus_bytes < base_bytes, (zeus_bytes, base_bytes)


def test_zeus_bandwidth_grows_with_remote_fraction():
    low, _ = _zeus_bytes_per_txn(0.0)
    high, _ = _zeus_bytes_per_txn(0.3)
    # Migrations carry object payloads + arbitration traffic.
    assert high > low


def test_read_only_share_costs_no_bandwidth():
    """TATP (80% reads) moves far fewer bytes/txn than Smallbank (85%
    writes) on Zeus — reads are local and commit-free (§5.3)."""
    from repro.workloads import TatpWorkload

    params = SimParams().scaled_threads(app=2, worker=2)
    tatp = TatpWorkload(3, subscribers_per_node=800, remote_frac=0.0)
    cluster = ZeusCluster(3, params=params, catalog=tatp.catalog)
    cluster.load(init_value=0)
    tstats = run_zeus_workload(cluster, tatp.spec_for, duration_us=DURATION,
                               threads=2)
    tatp_bytes = cluster.network.total_bytes / max(1, tstats.committed)

    smallbank_bytes, _ = _zeus_bytes_per_txn(0.0)
    assert tatp_bytes < 0.5 * smallbank_bytes
