"""Processes, futures, events: the cooperative-concurrency layer."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.process import Event, Future, Process, all_of, sleep


def test_process_sleeps_for_yielded_duration():
    sim = Simulator()
    seen = []

    def proc():
        yield 10.0
        seen.append(sim.now)
        yield 5.0
        seen.append(sim.now)

    Process(sim, proc())
    sim.run()
    assert seen == [10.0, 15.0]


def test_process_result_is_return_value():
    sim = Simulator()

    def proc():
        yield 1.0
        return 42

    p = Process(sim, proc())
    sim.run()
    assert p.done() and p.result() == 42


def test_process_awaits_future():
    sim = Simulator()
    fut = Future(sim)
    seen = []

    def proc():
        value = yield fut
        seen.append((sim.now, value))

    Process(sim, proc())
    sim.call_after(20.0, fut.set_result, "hello")
    sim.run()
    assert seen == [(20.0, "hello")]


def test_process_awaits_another_process():
    sim = Simulator()

    def child():
        yield 5.0
        return "child-done"

    def parent():
        result = yield Process(sim, child())
        return result

    p = Process(sim, parent())
    sim.run()
    assert p.result() == "child-done"


def test_yield_from_subgenerator_composes():
    sim = Simulator()

    def helper():
        yield 3.0
        return 7

    def proc():
        value = yield from helper()
        return value * 2

    p = Process(sim, proc())
    sim.run()
    assert p.result() == 14


def test_yield_from_completed_future():
    sim = Simulator()
    fut = Future(sim)
    fut.set_result(9)

    def proc():
        value = yield from fut
        return value

    p = Process(sim, proc())
    sim.run()
    assert p.result() == 9


def test_future_exception_raises_in_process():
    sim = Simulator()
    fut = Future(sim)
    seen = []

    def proc():
        try:
            yield fut
        except RuntimeError as err:
            seen.append(str(err))

    Process(sim, proc())
    sim.call_after(1.0, fut.set_exception, RuntimeError("bad"))
    sim.run()
    assert seen == ["bad"]


def test_unobserved_process_exception_fails_fast():
    sim = Simulator()

    def proc():
        yield 1.0
        raise ValueError("lost worker")

    Process(sim, proc())
    with pytest.raises(ValueError):
        sim.run()


def test_observed_process_exception_is_delivered_not_raised():
    sim = Simulator()

    def child():
        yield 1.0
        raise ValueError("delivered")

    caught = []

    def parent():
        try:
            yield Process(sim, child())
        except ValueError as err:
            caught.append(str(err))

    Process(sim, parent())
    sim.run()
    assert caught == ["delivered"]


def test_process_kill_stops_execution():
    sim = Simulator()
    seen = []

    def proc():
        yield 10.0
        seen.append("should not happen")

    p = Process(sim, proc())
    sim.call_after(5.0, p.kill)
    sim.run()
    assert seen == []
    assert p.done()


def test_future_double_completion_rejected():
    sim = Simulator()
    fut = Future(sim)
    fut.set_result(1)
    with pytest.raises(RuntimeError):
        fut.set_result(2)


def test_future_result_before_done_raises():
    sim = Simulator()
    with pytest.raises(RuntimeError):
        Future(sim).result()


def test_future_callback_after_done_still_fires():
    sim = Simulator()
    fut = Future(sim)
    fut.set_result("x")
    seen = []
    fut.add_done_callback(lambda f: seen.append(f.result()))
    sim.run()
    assert seen == ["x"]


def test_all_of_collects_results_in_order():
    sim = Simulator()
    futs = [Future(sim) for _ in range(3)]
    combined = all_of(sim, futs)
    sim.call_after(3.0, futs[2].set_result, "c")
    sim.call_after(1.0, futs[0].set_result, "a")
    sim.call_after(2.0, futs[1].set_result, "b")
    sim.run()
    assert combined.result() == ["a", "b", "c"]


def test_all_of_empty_completes_immediately():
    sim = Simulator()
    combined = all_of(sim, [])
    assert combined.done() and combined.result() == []


def test_all_of_propagates_exception():
    sim = Simulator()
    futs = [Future(sim), Future(sim)]
    combined = all_of(sim, futs)
    sim.call_after(1.0, futs[0].set_exception, RuntimeError("x"))
    sim.run()
    assert isinstance(combined.exception(), RuntimeError)


def test_event_wakes_all_waiters():
    sim = Simulator()
    event = Event(sim)
    seen = []

    def waiter(tag):
        yield event.wait()
        seen.append((tag, sim.now))

    Process(sim, waiter("a"))
    Process(sim, waiter("b"))
    sim.call_after(10.0, event.set)
    sim.run()
    assert sorted(seen) == [("a", 10.0), ("b", 10.0)]


def test_event_already_set_does_not_block():
    sim = Simulator()
    event = Event(sim)
    event.set()
    seen = []

    def waiter():
        yield event.wait()
        seen.append(sim.now)

    Process(sim, waiter())
    sim.run()
    assert seen == [0.0]


def test_event_clear_reblocks():
    sim = Simulator()
    event = Event(sim)
    event.set()
    event.clear()
    assert not event.is_set()


def test_sleep_helper():
    sim = Simulator()

    def proc():
        yield from sleep(12.0)
        return sim.now

    p = Process(sim, proc())
    sim.run()
    assert p.result() == 12.0


def test_invalid_yield_type_errors():
    sim = Simulator()

    def proc():
        yield "nonsense"

    Process(sim, proc())
    with pytest.raises(TypeError):
        sim.run()
