"""Causal tracing + critical-path latency attribution (`repro analyze`).

Covers the cross-node trace-context propagation, the Chrome flow-event
export, the exact segment-partition invariant of
:mod:`repro.obs.analysis`, and the CLI surfaces (`analyze`, smallbank
`--analyze`/`--flow`, chaos `--trace-out`).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.runner import main
from repro.harness.zeus_cluster import ZeusCluster
from repro.obs import (
    SEGMENTS,
    MetricsRegistry,
    Observability,
    Tracer,
    analyze,
    build_timelines,
    chrome_trace_events,
    folded_stacks,
    load_jsonl,
    write_metrics,
    write_trace_jsonl,
)
from repro.obs.analysis import _attribute, _wire_intervals
from repro.sim.kernel import Simulator
from repro.sim.params import SimParams


# ------------------------------------------------------- shared traced run


def _traced_smallbank(seed=7, duration_us=1_500.0):
    from repro.workloads import SmallbankWorkload, run_zeus_workload

    params = SimParams().scaled_threads(app=2, worker=2)
    obs = Observability(tracer=Tracer())
    # Four nodes with replication degree 3: some directories are remote,
    # so REQ service spans genuinely cross nodes (not just loopback).
    wl = SmallbankWorkload(4, accounts_per_node=200, remote_frac=0.2)
    cluster = ZeusCluster(4, params=params, catalog=wl.catalog, seed=seed,
                          obs=obs)
    cluster.load(init_value=1_000)
    run_zeus_workload(cluster, wl.spec_for, duration_us=duration_us,
                      threads=2, seed=seed)
    return obs.tracer


@pytest.fixture(scope="module")
def traced():
    return _traced_smallbank()


# --------------------------------------------- satellite: unbound tracer


def test_tracer_unbound_raises():
    tracer = Tracer()
    with pytest.raises(RuntimeError, match="tracer used before sim bound"):
        tracer.begin("txn", pid=0)
    with pytest.raises(RuntimeError, match="tracer used before sim bound"):
        tracer.instant("net.send", pid=0)
    # Binding afterwards (what the cluster builder does) makes it usable.
    tracer.sim = Simulator()
    span = tracer.begin("txn", pid=0)
    tracer.end(span)
    assert tracer.spans == [span]


# ------------------------------------- satellite: deterministic metrics


def test_metrics_dump_is_registration_order_independent(tmp_path):
    def build(names):
        registry = MetricsRegistry()
        for name, labels in names:
            registry.counter(name, **labels).inc()
        registry.gauge("depth").set(2.0)
        return registry

    forward = [("net.sent", {"node": 0}), ("net.sent", {"node": 2}),
               ("commit.committed", {"node": 1}), ("aborts", {})]
    p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
    write_metrics(build(forward), str(p1))
    write_metrics(build(list(reversed(forward))), str(p2))
    assert p1.read_bytes() == p2.read_bytes()
    names = list(json.loads(p1.read_text())["counters"])
    assert names == sorted(names)


# --------------------------------------- satellite: flow-event round-trip


def test_flow_events_reference_existing_spans(traced):
    events = chrome_trace_events(traced)
    json.loads(json.dumps(events))  # round-trips cleanly
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert starts, "traced run produced no flow events"
    assert sorted(e["id"] for e in starts) \
        == sorted(e["id"] for e in finishes)
    for e in finishes:
        assert e["bp"] == "e"
    # Every flow endpoint lands on a real span of a real track.
    spans = [e for e in events if e["ph"] == "X"]
    span_starts = {(s["pid"], s["tid"], s["ts"], s["name"]) for s in spans}
    for e in finishes:
        assert (e["pid"], e["tid"], e["ts"], e["name"]) in span_starts
    intervals = {}
    for s in spans:
        intervals.setdefault((s["pid"], s["tid"]), []).append(
            (s["ts"], s["ts"] + s["dur"]))
    for e in starts:
        assert any(a <= e["ts"] <= b
                   for a, b in intervals.get((e["pid"], e["tid"]), []))


def test_flows_link_txn_to_remote_service_and_commit_ack(traced):
    # The acceptance criterion: a coordinator `txn` span is causally
    # chained (via parent ids) to a remote `own_acquire.serve` service
    # span and to a replica `commit_ack` span, and the Chrome flow
    # arrows for both cross nodes.
    by_id = {s.span_id: s for s in traced.spans if s.span_id is not None}

    def root_of(span):
        # A parent can be missing when its span was still open at the
        # end of the workload window (the txn never closed).
        while span.parent_id is not None:
            span = by_id.get(span.parent_id)
            if span is None:
                return None
        return span

    for name in ("own_acquire.serve", "commit_ack"):
        served = [s for s in traced.spans if s.name == name]
        assert served, f"no {name} spans recorded"
        chained = [s for s in served
                   if root_of(s) is not None and root_of(s).name == "txn"]
        assert chained, f"no {name} span chains up to a txn root"
        assert any(s.pid != root_of(s).pid for s in chained), \
            f"no cross-node {name} link"

    events = chrome_trace_events(traced)
    pairs = {}
    for e in events:
        if e["ph"] in ("s", "f"):
            pairs.setdefault(e["id"], {})[e["ph"]] = e
    for name in ("own_acquire.serve", "commit_ack"):
        crossing = [p for p in pairs.values()
                    if "s" in p and "f" in p and p["f"]["name"] == name
                    and p["s"]["pid"] != p["f"]["pid"]]
        assert crossing, f"no cross-node flow arrow for {name}"


def test_chrome_trace_without_contexts_has_no_flow_events():
    sim = Simulator()
    tracer = Tracer(sim)
    span = tracer.begin("txn", pid=0)
    tracer.end(span)
    tracer.instant("net.send", pid=0, dst=1)
    phases = {e["ph"] for e in chrome_trace_events(tracer)}
    assert phases == {"M", "X", "i"}


# -------------------------------------------- the partition invariant


def test_segments_partition_every_txn_exactly(traced):
    timelines = build_timelines(traced)
    assert len(timelines) > 100
    for t in timelines:
        assert all(ns >= 0 for ns in t.segments_ns.values())
        assert sum(t.segments_ns.values()) == t.duration_ns
        assert set(t.segments_ns) == set(SEGMENTS)


@settings(max_examples=100, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_attribute_partitions_exactly(data):
    start = data.draw(st.integers(0, 500))
    end = start + data.draw(st.integers(0, 2_000))
    residuals = ("ownership-blocked", "replication-ACK wait")
    windows = []
    for _ in range(data.draw(st.integers(0, 4))):
        a = data.draw(st.integers(-100, end + 100))
        windows.append((a, a + data.draw(st.integers(0, 600)),
                        data.draw(st.sampled_from(residuals))))
    details = {}
    for name in ("retransmit stall", "remote-CPU service",
                 "CPU-queue wait", "wire"):
        ivs = []
        for _ in range(data.draw(st.integers(0, 3))):
            a = data.draw(st.integers(-100, end + 100))
            ivs.append((a, a + data.draw(st.integers(0, 400))))
        details[name] = ivs
    segments = _attribute(start, end, windows, details)
    assert set(segments) == set(SEGMENTS)
    assert all(v >= 0 for v in segments.values())
    assert sum(segments.values()) == max(0, end - start)
    # Detail evidence only ever applies inside a blocked window.
    if not windows:
        assert segments["local CPU"] == max(0, end - start)


def test_wire_intervals_split_retransmit_stall():
    def inst(name, t_us, flow):
        return {"type": "instant", "name": name, "start_us": t_us,
                "args": {"flow": flow}}

    instants = [
        inst("net.send", 0.0, 1), inst("net.send", 5.0, 1),
        inst("net.deliver", 7.0, 1),          # retransmit got through
        inst("net.send", 1.0, 2), inst("net.deliver", 3.0, 2),  # clean
        inst("net.send", 2.0, 3), inst("net.send", 6.0, 3),     # lost
    ]
    wire, stall = _wire_intervals(instants)
    assert (5_000, 7_000) in wire and (1_000, 3_000) in wire
    assert (0, 5_000) in stall and (2_000, 6_000) in stall


# ---------------------------------------------------------- determinism


def test_analysis_is_deterministic_and_jsonl_stable(tmp_path):
    t1 = _traced_smallbank(seed=11, duration_us=800.0)
    t2 = _traced_smallbank(seed=11, duration_us=800.0)
    assert analyze(t1).breakdown_table() == analyze(t2).breakdown_table()
    assert folded_stacks(t1) == folded_stacks(t2)
    p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_trace_jsonl(t1, str(p1))
    write_trace_jsonl(t2, str(p2))
    assert p1.read_bytes() == p2.read_bytes()
    # A trace read back from disk analyzes identically to the live one.
    assert analyze(load_jsonl(str(p1))).breakdown_table() \
        == analyze(t1).breakdown_table()


def test_breakdown_table_always_lists_every_segment(traced):
    table = analyze(traced).breakdown_table()
    for name in SEGMENTS:
        assert name in table
    assert "replication-ACK wait" in table  # the CI gate string
    folded = folded_stacks(traced)
    assert folded == sorted(folded)
    assert all(int(line.rsplit(" ", 1)[1]) > 0 for line in folded)


# ------------------------------------------------------------------ CLI


def test_cli_analyze_jsonl_and_folded(tmp_path, capsys):
    trace_path = tmp_path / "run.jsonl"
    write_trace_jsonl(_traced_smallbank(seed=3, duration_us=800.0),
                      str(trace_path))
    folded_path = tmp_path / "run.folded"
    assert main(["analyze", "--jsonl", str(trace_path),
                 "--folded", str(folded_path)]) == 0
    out = capsys.readouterr().out
    assert "latency breakdown" in out
    assert "replication-ACK wait" in out
    assert folded_path.read_text().strip()


def test_cli_analyze_inline_run(capsys):
    assert main(["analyze", "--duration", "600", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "traced inline run" in out
    assert "replication-ACK wait" in out


def test_cli_analyze_empty_trace_fails(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["analyze", "--jsonl", str(empty)]) == 1
    assert "no traced transactions" in capsys.readouterr().out


def test_cli_chaos_trace_out_contains_quarantine(tmp_path, capsys):
    trace_path = tmp_path / "worst.jsonl"
    rc = main(["chaos", "--schedules", "1", "--seeds", "1",
               "--duration", "10000", "--quiesce", "10000",
               "--trace-out", str(trace_path)])
    assert rc == 0
    assert "wrote worst-cell trace" in capsys.readouterr().out
    records = load_jsonl(str(trace_path))
    # The recovery quarantine window shows up as a span (satellite 6).
    quarantine = [r for r in records if r["name"] == "recovery.quarantine"]
    assert quarantine and all(r["type"] == "span" for r in quarantine)
    # The faulty run still yields analyzable transaction timelines.
    assert build_timelines(records)
