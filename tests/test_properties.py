"""Property-based tests (hypothesis) on core data structures & invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.metrics import percentile
from repro.sim.kernel import Simulator
from repro.sim.resources import CpuPool, CpuServer
from repro.store.meta import Ots, ReplicaSet
from repro.verify.invariants import check_invariants
from tests.conftest import make_cluster

node_ids = st.integers(min_value=0, max_value=7)
ots_values = st.builds(Ots, st.integers(0, 100), node_ids)


@given(ots_values, ots_values)
def test_ots_total_order(a, b):
    assert (a < b) + (a > b) + (a == b) == 1


@given(ots_values, node_ids)
def test_ots_next_is_strictly_larger(ts, driver):
    assert ts.next_for(driver) > ts


@st.composite
def replica_sets(draw):
    owner = draw(st.one_of(st.none(), node_ids))
    readers = draw(st.lists(node_ids, max_size=5, unique=True))
    readers = tuple(r for r in readers if r != owner)
    return ReplicaSet(owner, readers)


@given(replica_sets(), node_ids)
def test_with_owner_invariants(rs, new_owner):
    moved = rs.with_owner(new_owner)
    assert moved.owner == new_owner
    assert new_owner not in moved.readers
    # Every previous replica is still a replica (data is never dropped by
    # an ownership move itself — only an explicit trim drops replicas).
    assert rs.all_nodes() <= moved.all_nodes() | {new_owner}


@given(replica_sets(), node_ids)
def test_without_removes_exactly_one(rs, victim):
    stripped = rs.without(victim)
    assert victim not in stripped.all_nodes()
    assert stripped.all_nodes() == rs.all_nodes() - {victim}


@given(replica_sets(), node_ids)
def test_with_reader_monotone(rs, reader):
    grown = rs.with_reader(reader)
    assert reader in grown.all_nodes()
    assert rs.all_nodes() <= grown.all_nodes()
    assert grown.owner == rs.owner


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200),
       st.floats(min_value=0, max_value=100))
def test_percentile_within_range(samples, p):
    value = percentile(samples, p)
    assert min(samples) <= value <= max(samples)


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1,
                max_size=50))
def test_cpu_server_total_busy_equals_sum(costs):
    sim = Simulator()
    cpu = CpuServer(sim)
    for cost in costs:
        cpu.execute(cost)
    sim.run()
    assert abs(cpu.busy_time - sum(costs)) < 1e-6
    assert abs(sim.now - sum(costs)) < 1e-6  # serial: finishes at the sum


@given(st.integers(1, 6),
       st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1,
                max_size=40))
def test_cpu_pool_finishes_no_earlier_than_ideal(size, costs):
    sim = Simulator()
    pool = CpuPool(sim, size)
    for cost in costs:
        pool.execute(cost)
    sim.run()
    ideal = sum(costs) / size
    longest = max(costs)
    assert sim.now >= max(ideal, longest) - 1e-6


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000),
       st.lists(st.tuples(st.integers(0, 2), st.integers(0, 7),
                          st.integers(1, 3)),
                min_size=1, max_size=25))
def test_random_workloads_preserve_invariants(seed, txns):
    """Arbitrary concurrent write mixes never violate the paper's
    invariants, and all replicas converge at quiescence."""
    cluster = make_cluster(3, objects=8, seed=seed)

    def app(node_id, oid, k):
        api = cluster.handles[node_id].api
        write_set = [(oid + i) % 8 for i in range(k)]
        yield from api.execute_write(0, write_set)

    for node_id, oid, k in txns:
        cluster.spawn_app(node_id, 0, app(node_id, oid, k))
    cluster.run(until=2_000_000)
    check_invariants(cluster)
    # Convergence: all replicas of every object agree on version & data.
    for oid in range(8):
        versions = {h.store.get(oid).t_version
                    for h in cluster.handles if h.store.has(oid)}
        datas = {h.store.get(oid).t_data
                 for h in cluster.handles if h.store.has(oid)}
        assert len(versions) == 1, (oid, versions)
        assert len(datas) == 1


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 1_000), st.integers(2, 5))
def test_hermes_replicas_converge(seed, writes):
    from repro.hermes.protocol import HermesReplica

    cluster = make_cluster(3, seed=seed)
    replicas = [HermesReplica(cluster.nodes[n], (0, 1, 2)) for n in range(3)]
    rng = cluster.rng.stream("prop")
    for i in range(writes):
        replicas[rng.randrange(3)].write("k", i)
    cluster.run(until=1_000_000)
    values = {r.read("k") for r in replicas}
    assert len(values) == 1


# ------------------------------------------------------ reliable transport


def make_transport_pair(sim, faults=None, fault_seed=0):
    import random

    from repro.net.fault import FaultInjector
    from repro.net.network import Network
    from repro.net.reliable import ReliableTransport
    from repro.sim.params import NetParams

    params = NetParams(jitter_us=0.0)
    injector = FaultInjector(faults) if faults else None
    net = Network(sim, params, injector)
    if injector is not None:
        net.faults.rng = random.Random(fault_seed)
    inbox_a, inbox_b = [], []
    a = ReliableTransport(sim, net, 0, params, inbox_a.append)
    b = ReliableTransport(sim, net, 1, params, inbox_b.append)
    return net, a, b, inbox_a, inbox_b


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000),
       st.floats(min_value=0.0, max_value=0.4),
       st.floats(min_value=0.0, max_value=0.5),
       st.floats(min_value=0.0, max_value=30.0),
       st.integers(1, 40))
def test_reliable_exactly_once_in_order_under_faults(seed, loss, dup,
                                                     reorder, count):
    """Whatever mix of loss, duplication, and reordering the network
    injects, the reliable layer delivers every payload exactly once and
    in send order."""
    from repro.sim.params import FaultParams

    sim = Simulator()
    faults = FaultParams(loss_prob=loss, duplicate_prob=dup,
                         reorder_max_us=reorder)
    _net, a, _b, _ia, inbox_b = make_transport_pair(sim, faults, seed)
    for i in range(count):
        a.send(1, "k", i, 10)
    sim.run(until=2_000_000)
    assert [m.payload for m in inbox_b] == list(range(count))
    assert a.unacked_count() == 0


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000), st.integers(1, 10), st.integers(1, 5))
def test_reliable_probe_recovers_after_heal(seed, before, after):
    """A sender that exhausts its retransmit budget against a partitioned
    peer falls back to slow probing, then resynchronizes and delivers
    everything — old and new — once the partition heals."""
    sim = Simulator()
    net, a, _b, _ia, inbox_b = make_transport_pair(sim, fault_seed=seed)
    net.partition(0, 1)
    for i in range(before):
        a.send(1, "k", i, 10)
    sim.run(until=150_000)
    assert a.gave_up >= 1
    assert inbox_b == []
    assert a.unacked_count() == before  # buffer kept for the heal
    net.heal(0, 1)
    for i in range(after):
        a.send(1, "k", before + i, 10)
    sim.run(until=400_000)
    assert [m.payload for m in inbox_b] == list(range(before + after))
    assert a.unacked_count() == 0
