"""Simulation kernel: scheduling, ordering, cancellation, clock."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_call_after_advances_clock():
    sim = Simulator()
    seen = []
    sim.call_after(10.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [10.0]


def test_events_fire_in_time_order():
    sim = Simulator()
    seen = []
    sim.call_after(30.0, seen.append, "c")
    sim.call_after(10.0, seen.append, "a")
    sim.call_after(20.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    seen = []
    for tag in "abcde":
        sim.call_after(5.0, seen.append, tag)
    sim.run()
    assert seen == list("abcde")


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    seen = []
    sim.call_after(7.0, lambda: sim.call_soon(lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [7.0]


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.call_after(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().call_after(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    handle = sim.call_after(10.0, seen.append, "x")
    handle.cancel()
    sim.run()
    assert seen == []


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.call_after(10.0, seen.append, "early")
    sim.call_after(100.0, seen.append, "late")
    sim.run(until=50.0)
    assert seen == ["early"]
    assert sim.now == 50.0  # clock advanced exactly to the bound


def test_run_until_resumes_where_left_off():
    sim = Simulator()
    seen = []
    sim.call_after(10.0, seen.append, "a")
    sim.call_after(60.0, seen.append, "b")
    sim.run(until=50.0)
    sim.run(until=100.0)
    assert seen == ["a", "b"]


def test_run_max_events_budget():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.call_after(float(i + 1), seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.call_after(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_step_executes_one_event():
    sim = Simulator()
    seen = []
    sim.call_after(1.0, seen.append, "a")
    sim.call_after(2.0, seen.append, "b")
    assert sim.step() is True
    assert seen == ["a"]


def test_peek_time_skips_cancelled():
    sim = Simulator()
    h1 = sim.call_after(1.0, lambda: None)
    sim.call_after(2.0, lambda: None)
    h1.cancel()
    assert sim.peek_time() == 2.0


def test_peek_time_empty():
    assert Simulator().peek_time() is None


def test_nested_scheduling_during_run():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.call_after(5.0, inner)

    def inner():
        seen.append(("inner", sim.now))

    sim.call_after(10.0, outer)
    sim.run()
    assert seen == [("outer", 10.0), ("inner", 15.0)]


def test_exception_in_handler_propagates():
    sim = Simulator()

    def boom():
        raise ValueError("boom")

    sim.call_after(1.0, boom)
    with pytest.raises(ValueError):
        sim.run()
