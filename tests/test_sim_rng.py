"""Deterministic named RNG streams."""

from repro.sim.rng import RngRegistry, hash_str


def test_same_name_same_stream_object():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_deterministic_across_registries():
    a = [RngRegistry(7).stream("net").random() for _ in range(5)]
    b = [RngRegistry(7).stream("net").random() for _ in range(5)]
    assert a == b


def test_different_names_independent():
    reg = RngRegistry(7)
    a = [reg.stream("x").random() for _ in range(5)]
    b = [reg.stream("y").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(1).stream("s").random()
    b = RngRegistry(2).stream("s").random()
    assert a != b


def test_draws_in_one_stream_do_not_affect_another():
    reg1 = RngRegistry(3)
    _ = [reg1.stream("noise").random() for _ in range(100)]
    v1 = reg1.stream("signal").random()
    reg2 = RngRegistry(3)
    v2 = reg2.stream("signal").random()
    assert v1 == v2


def test_fork_is_independent():
    reg = RngRegistry(5)
    fork = reg.fork("child")
    assert reg.stream("s").random() != fork.stream("s").random()


def test_hash_str_stable_and_positive():
    assert hash_str("abc") == hash_str("abc")
    assert hash_str("abc") != hash_str("abd")
    assert hash_str("anything") >= 0
