"""Workload generators: mixes, locality semantics, analyses."""

import random


from repro.workloads import (
    HandoverWorkload,
    MobilityModel,
    SmallbankWorkload,
    TatpWorkload,
    TpccAnalysis,
    VenmoGraph,
    VoterWorkload,
)


# ---------------------------------------------------------------- smallbank


def test_smallbank_mix_shares():
    wl = SmallbankWorkload(3, accounts_per_node=500)
    rng = random.Random(1)
    tags = {}
    for _ in range(20_000):
        spec = wl.spec_for(rng.randrange(3), 0, rng)
        tags[spec.tag] = tags.get(spec.tag, 0) + 1
    total = sum(tags.values())
    assert abs(tags["send_payment"] / total - 0.25) < 0.02
    assert abs(tags["balance"] / total - 0.15) < 0.02


def test_smallbank_balance_is_read_only():
    wl = SmallbankWorkload(3, accounts_per_node=100)
    rng = random.Random(2)
    for _ in range(500):
        spec = wl.spec_for(0, 0, rng)
        if spec.tag == "balance":
            assert spec.read_only
            assert len(spec.read_set) == 2
            assert not spec.write_set
        else:
            assert not spec.read_only
            assert spec.write_set


def test_smallbank_zero_remote_means_local_objects():
    wl = SmallbankWorkload(3, accounts_per_node=200, remote_frac=0.0)
    rng = random.Random(3)
    for _ in range(300):
        node = rng.randrange(3)
        spec = wl.spec_for(node, 0, rng)
        for oid in spec.write_set:
            assert wl.home[wl._account_of(oid)] == node


def test_smallbank_remote_fraction_close_to_requested():
    wl = SmallbankWorkload(3, accounts_per_node=500, remote_frac=0.2)
    measured = wl.remote_fraction_generated(samples=8_000)
    assert abs(measured - 0.2) < 0.05


def test_smallbank_migration_rehomes():
    wl = SmallbankWorkload(3, accounts_per_node=100, remote_frac=1.0)
    rng = random.Random(4)
    before = list(wl.home)
    for _ in range(200):
        wl.spec_for(0, 0, rng)
    moved = sum(1 for a, b in zip(before, wl.home) if a != b)
    assert moved > 0
    assert all(h == 0 or before[i] == wl.home[i] for i, h in enumerate(wl.home)
               if before[i] != wl.home[i] or h == 0)


def test_smallbank_hotspot_concentrates_accesses():
    wl = SmallbankWorkload(3, accounts_per_node=1000, hot_frac=0.04,
                           hot_prob=0.9)
    rng = random.Random(5)
    hot_hits = total = 0
    per_node = wl.accounts // 3
    hot_per_node = int(per_node * wl.hot_frac)
    for _ in range(3_000):
        spec = wl.spec_for(rng.randrange(3), 0, rng)
        for oid in spec.write_set or spec.read_set:
            total += 1
            if wl._account_of(oid) % per_node < hot_per_node:
                hot_hits += 1
    assert hot_hits / total > 0.6


# --------------------------------------------------------------------- tatp


def test_tatp_read_share():
    wl = TatpWorkload(3, subscribers_per_node=300)
    rng = random.Random(6)
    reads = 0
    for _ in range(5_000):
        reads += wl.spec_for(rng.randrange(3), 0, rng).read_only
    assert abs(reads / 5_000 - 0.80) < 0.03


def test_tatp_single_subscriber_objects():
    wl = TatpWorkload(3, subscribers_per_node=100)
    rng = random.Random(7)
    for _ in range(300):
        spec = wl.spec_for(0, 0, rng)
        # All oids of a spec belong to one subscriber.
        oids = list(spec.write_set) + list(spec.read_set)
        subscribers = set()
        for oid in oids:
            for row in wl.oids:
                if oid in row:
                    subscribers.add(row.index(oid))
        assert len(subscribers) == 1


def test_tatp_write_migration_rehomes_subscriber():
    wl = TatpWorkload(2, subscribers_per_node=50, remote_frac=1.0)
    rng = random.Random(8)
    for _ in range(200):
        wl.spec_for(0, 0, rng)
    assert any(h == 0 for h in wl.home[50:])  # node 1's subs stolen by 0


def test_tatp_static_mode_reads_also_remote():
    wl = TatpWorkload(2, subscribers_per_node=200, remote_frac=0.5,
                      track_migration=False)
    rng = random.Random(9)
    remote_reads = reads = 0
    for _ in range(4_000):
        spec = wl.spec_for(0, 0, rng)
        if not spec.read_only:
            continue
        reads += 1
        oid = spec.read_set[0]
        for row in wl.oids:
            if oid in row:
                remote_reads += wl.home[row.index(oid)] != 0
                break
    assert remote_reads / reads > 0.3


# ---------------------------------------------------------------- handovers


def test_handover_mix_contains_all_operations():
    wl = HandoverWorkload(3, users_per_node=300, stations_per_node=10,
                          handover_frac=0.2)
    rng = random.Random(10)
    tags = set()
    for _ in range(3_000):
        spec = wl.spec_for(rng.randrange(3), 0, rng)
        if spec is not None:
            tags.add(spec.tag)
    assert {"service_request", "release",
            "handover_start", "handover_end"} <= tags


def test_handover_start_followed_by_end_at_target():
    wl = HandoverWorkload(2, users_per_node=100, stations_per_node=5,
                          handover_frac=1.0, mobile_frac=1.0,
                          remote_handover_frac=1.0)
    rng = random.Random(11)
    start = wl.spec_for(0, 0, rng)
    assert start.tag == "handover_start"
    assert wl.pending_end[1], "end txn queued on the remote node"
    end = wl.spec_for(1, 0, rng)
    assert end.tag == "handover_end"


def test_handover_remote_fraction_tracks_mobility_model():
    wl = HandoverWorkload(6, users_per_node=200, stations_per_node=10,
                          handover_frac=0.5, mobile_frac=1.0)
    rng = random.Random(12)
    for _ in range(4_000):
        node = rng.randrange(6)
        wl.spec_for(node, 0, rng)
    frac = wl.remote_handovers / max(1, wl.handovers_started)
    assert abs(frac - wl.remote_handover_frac) < 0.03


def test_handover_400_bytes_per_service_request():
    wl = HandoverWorkload(3, users_per_node=50, stations_per_node=5)
    rng = random.Random(13)
    spec = wl._service_or_release(0, rng)
    size = sum(wl.catalog.size_of(oid) for oid in spec.write_set)
    assert 350 <= size <= 500  # "about 400B of data per transaction"


# -------------------------------------------------------------------- voter


def test_voter_votes_touch_two_objects():
    wl = VoterWorkload(3, voters=600)
    rng = random.Random(14)
    spec = wl.spec_for(0, 0, rng)
    assert spec is not None
    assert len(spec.write_set) == 2


def test_voter_move_contestant_lists_all_objects():
    wl = VoterWorkload(3, voters=600, hot_contestant_voters=100)
    moved = wl.move_contestant(0, 2)
    # contestant row + every history row of its voters
    voters_for_0 = sum(1 for c in wl.voter_choice if c == 0)
    assert len(moved) == voters_for_0 + 1
    assert wl.contestant_node[0] == 2


def test_voter_single_node_setup():
    wl = VoterWorkload(3, voters=300, single_node_setup=True)
    assert set(wl.contestant_node) == {0}
    assert all(wl.catalog.initial_owner(oid) == 0
               for oid in wl.contestant_oids)


def test_voter_popularity_skew():
    wl = VoterWorkload(3, voters=5_000, zipf_s=1.2)
    counts = [0] * wl.num_contestants
    for choice in wl.voter_choice:
        counts[choice] += 1
    assert counts[0] > counts[-1] * 2


# ------------------------------------------------------------- mobility etc.


def test_mobility_analytic_matches_measured():
    model = MobilityModel(6)
    assert abs(model.analytic_remote_fraction()
               - model.measure_remote_fraction()) < 0.02


def test_mobility_single_node_no_remote():
    assert MobilityModel(1).analytic_remote_fraction() == 0.0


def test_mobility_paths_stay_on_grid():
    model = MobilityModel(3)
    path = model.commute_path(200, random.Random(1))
    for row, col in path:
        assert 0 <= row < model.rows
        assert 0 <= col < model.cols


def test_mobility_stripes_cover_all_nodes():
    model = MobilityModel(6)
    nodes = {model.cell_node(r, 0) for r in range(model.rows)}
    assert nodes == set(range(6))


def test_venmo_remote_fraction_scales_with_nodes():
    graph = VenmoGraph(users=6_000)
    r3 = graph.measure_remote_fraction(3, payments=40_000)
    r6 = graph.measure_remote_fraction(6, payments=40_000)
    assert r3 < r6 < 0.02


def test_venmo_clustering_high():
    assert VenmoGraph(users=3_000).clustering_ratio(5_000) > 0.95


def test_venmo_payment_parties_differ():
    graph = VenmoGraph(users=1_000)
    for _ in range(500):
        payer, payee = graph.payment()
        assert payer != payee


def test_tpcc_remote_fraction_near_paper():
    analysis = TpccAnalysis()
    assert 0.015 < analysis.remote_fraction(per_line=True) < 0.035


def test_tpcc_single_node_zero_remote():
    analysis = TpccAnalysis(num_nodes=1)
    assert analysis.remote_fraction(per_line=True) == 0.0


def test_tpcc_more_nodes_more_remote():
    few = TpccAnalysis(num_nodes=2).remote_fraction()
    many = TpccAnalysis(num_nodes=12).remote_fraction()
    assert many > few
