"""Chaos layer: schedules, generator, engine, campaign, audits, and
recovery-under-faults coverage (commit replay / arb-replay with loss and
duplication active, membership telling lost heartbeats from crashes)."""

import pytest

from repro.chaos import (
    CampaignConfig,
    ChaosEngine,
    CrashEvent,
    FaultSchedule,
    FaultWindowEvent,
    PartitionEvent,
    SlowdownEvent,
    generate_schedule,
    run_campaign,
    run_chaos_once,
)
from repro.chaos.campaign import _build_cluster
from repro.sim.params import FaultParams
from repro.verify.audit import (
    CommitLedger,
    audit_exactly_once,
    audit_liveness,
    audit_run,
)
from repro.verify.invariants import check_invariants
from repro.workloads.base import TxnSpec, run_zeus_workload
from tests.conftest import make_cluster


# ======================================================================
# Schedules
# ======================================================================

def test_schedule_sorts_events_and_signature_is_stable():
    a = CrashEvent(at_us=5_000.0, node=1)
    b = PartitionEvent(at_us=2_000.0, a_side=(0,), b_side=(1, 2),
                       heal_at_us=4_000.0)
    s1 = FaultSchedule([a, b], name="x")
    s2 = FaultSchedule([b, a], name="x")
    assert [e.at_us for e in s1] == [2_000.0, 5_000.0]
    assert s1.signature() == s2.signature()
    assert s1.crash_nodes == (1,)
    assert s1.has_partition and not s1.has_slowdown
    assert "partition" in s1.describe()


@pytest.mark.parametrize("events,message", [
    ([CrashEvent(at_us=-1.0, node=0)], "before t=0"),
    ([CrashEvent(at_us=1.0, node=9)], "bad node"),
    ([PartitionEvent(at_us=1.0, a_side=(), b_side=(1,))], "empty side"),
    ([PartitionEvent(at_us=1.0, a_side=(0, 1), b_side=(1, 2))],
     "overlapping sides"),
    ([PartitionEvent(at_us=5.0, a_side=(0,), b_side=(1,), heal_at_us=4.0)],
     "heal before cut"),
    ([SlowdownEvent(at_us=1.0, node=0, factor=0.0)], "bad factor"),
    ([SlowdownEvent(at_us=5.0, node=0, factor=2.0, end_us=4.0)],
     "window ends early"),
    ([FaultWindowEvent(at_us=5.0, end_us=5.0, params=FaultParams())],
     "window ends early"),
    ([FaultWindowEvent(at_us=1.0, end_us=10.0, params=FaultParams()),
      FaultWindowEvent(at_us=5.0, end_us=15.0, params=FaultParams())],
     "overlapping fault windows"),
])
def test_schedule_validation_rejects(events, message):
    with pytest.raises(ValueError, match=message):
        FaultSchedule(events).validate(num_nodes=3)


def test_schedule_validation_enforces_horizon():
    sched = FaultSchedule([CrashEvent(at_us=9_000.0, node=0)])
    sched.validate(num_nodes=3, horizon_us=10_000.0)
    with pytest.raises(ValueError, match="past horizon"):
        sched.validate(num_nodes=3, horizon_us=8_000.0)


# ======================================================================
# Generator
# ======================================================================

def test_generator_is_deterministic_per_seed():
    kw = dict(num_nodes=4, horizon_us=30_000.0, difficulty=3)
    s1 = generate_schedule(seed=7, **kw)
    s2 = generate_schedule(seed=7, **kw)
    assert s1.signature() == s2.signature()
    assert s1.signature() != generate_schedule(seed=8, **kw).signature()


def test_generator_difficulty_scales_adversity():
    with pytest.raises(ValueError):
        generate_schedule(4, 30_000.0, seed=0, difficulty=0)
    # Difficulty 3 stacks loss + partition + slowdown in every schedule.
    s3 = generate_schedule(4, 30_000.0, seed=0, difficulty=3)
    assert s3.has_fault_window and s3.has_partition and s3.has_slowdown
    # Difficulty 1 picks exactly one adversity (plus possibly a crash).
    s1 = generate_schedule(4, 30_000.0, seed=0, difficulty=1,
                           allow_crash=False)
    kinds = sum([s1.has_fault_window, s1.has_partition, s1.has_slowdown])
    assert kinds == 1 and not s1.crash_nodes


def test_generator_require_crash_and_heal_bounds():
    for seed in range(5):
        sched = generate_schedule(4, 30_000.0, seed=seed, difficulty=3,
                                  require_crash=True)
        assert len(sched.crash_nodes) == 1
        for ev in sched:
            if isinstance(ev, PartitionEvent):
                # Generated partitions always heal inside the run.
                assert ev.heal_at_us is not None
                assert ev.heal_at_us <= 30_000.0 * 0.7


# ======================================================================
# Engine
# ======================================================================

def test_engine_applies_schedule_to_cluster():
    cluster = make_cluster(3)
    burst = FaultParams(loss_prob=0.5)
    sched = FaultSchedule([
        CrashEvent(at_us=5_000.0, node=2),
        PartitionEvent(at_us=1_000.0, a_side=(0,), b_side=(1,),
                       heal_at_us=3_000.0),
        SlowdownEvent(at_us=1_000.0, node=1, factor=4.0, end_us=3_000.0),
        FaultWindowEvent(at_us=1_000.0, end_us=3_000.0, params=burst),
    ])
    engine = ChaosEngine(cluster)
    engine.install(sched)
    with pytest.raises(RuntimeError):
        engine.install(sched)

    mid, after = {}, {}

    def probe(into):
        into["partitioned"] = cluster.network.is_partitioned(0, 1)
        into["slowdown"] = cluster.nodes[1].slowdown
        into["loss"] = cluster.faults.params.loss_prob

    cluster.sim.call_at(2_000.0, probe, mid)
    cluster.sim.call_at(4_000.0, probe, after)
    cluster.run(until=6_000.0)

    assert mid == {"partitioned": True, "slowdown": 4.0, "loss": 0.5}
    assert after == {"partitioned": False, "slowdown": 1.0, "loss": 0.0}
    assert not cluster.nodes[2].alive
    assert [n for _t, n in cluster.failures.crashed] == [2]


def test_engine_rejects_schedule_for_wrong_cluster_size():
    cluster = make_cluster(3)
    sched = FaultSchedule([CrashEvent(at_us=1_000.0, node=5)])
    with pytest.raises(ValueError, match="bad node"):
        ChaosEngine(cluster).install(sched)


# ======================================================================
# Campaign
# ======================================================================

def _small_cfg(**overrides):
    kw = dict(num_schedules=2, seeds=(0, 1), difficulty=2,
              duration_us=20_000.0, quiesce_us=25_000.0)
    kw.update(overrides)
    return CampaignConfig(**kw)


def test_single_run_is_deterministic():
    cfg = _small_cfg()
    sched = generate_schedule(cfg.num_nodes, cfg.duration_us, seed=101,
                              difficulty=3, require_crash=True)
    r1 = run_chaos_once(sched, seed=0, cfg=cfg)
    r2 = run_chaos_once(sched, seed=0, cfg=cfg)
    assert r1.digest() == r2.digest()
    assert r1.ok, r1.audit.problems()
    assert r1.committed > 0
    assert "crash" in " ".join(r1.timeline)


def test_small_campaign_passes_all_audits():
    result = run_campaign(_small_cfg())
    assert len(result.runs) == 4
    assert result.ok, result.summary()
    # The first schedule is forced to crash a node, so every campaign
    # exercises failure detection + recovery.
    assert any("crash" in e for r in result.runs for e in r.timeline)
    assert result.registry.snapshot()["counters"]["chaos.runs"] == 4
    assert "campaign" in result.summary()


def test_unhealed_partition_fails_liveness_audit():
    """A partition that never heals must be caught, not papered over."""
    cfg = _small_cfg()
    sched = FaultSchedule([
        PartitionEvent(at_us=2_000.0, a_side=(0,), b_side=(1, 2, 3),
                       heal_at_us=None),
    ], name="no-heal")
    report = run_chaos_once(sched, seed=0, cfg=cfg)
    assert not report.ok
    assert any("unacked" in p for p in report.audit.liveness)


def test_exactly_once_audit_detects_ledger_mismatch():
    cfg = _small_cfg()
    cluster = _build_cluster(cfg, seed=0, obs=None)
    cluster.start_membership()
    ledger = CommitLedger()

    def spec_fn(node_id, thread, rng):
        return TxnSpec(write_set=[rng.randrange(cfg.num_objects)], exec_us=0.3)

    def on_commit(node_id, spec, _result):
        ledger.record(node_id, spec.write_set)

    run_zeus_workload(cluster, spec_fn, duration_us=5_000.0,
                      threads=1, seed=0, on_commit=on_commit)
    cluster.run(until=30_000.0)
    assert audit_exactly_once(cluster, ledger) == []
    # A commit the datastore never applied shows up as a deficit...
    ledger.record(0, [0])
    assert any("committed increments" in p
               for p in audit_exactly_once(cluster, ledger))
    # ...and a duplicated application as an excess.
    ledger.by_node[0][0] -= 2
    assert any("applied" in p for p in audit_exactly_once(cluster, ledger))


# ======================================================================
# Recovery under faults (loss + duplication active during recovery)
# ======================================================================

def _faulty_cluster(seed):
    cluster = make_cluster(4, objects=12, fast_failover=True, seed=seed,
                           faults=FaultParams(loss_prob=0.03,
                                              duplicate_prob=0.03,
                                              reorder_max_us=4.0))
    cluster.start_membership()
    return cluster


def _counter_spec(node_id, thread, rng):
    return TxnSpec(write_set=rng.sample(range(12), 2), exec_us=0.3)


def test_commit_replay_completes_with_loss_and_duplication():
    """A coordinator crash mid-pipeline forces commit replay, and the
    replay itself runs over a network that is still losing and duplicating
    messages — recovery must converge anyway."""
    cluster = _faulty_cluster(seed=3)
    cluster.crash(3, at=5_000.0)
    ledger = CommitLedger()

    def on_commit(node_id, spec, _result):
        ledger.record(node_id, spec.write_set)

    run_zeus_workload(cluster, _counter_spec, duration_us=20_000.0,
                      threads=2, seed=3, on_commit=on_commit)
    cluster.run(until=200_000.0)

    replays = sum(h.commit.counters.as_dict().get("commit_replay", 0)
                  for h in cluster.handles)
    assert replays > 0  # the recovery path actually ran
    assert cluster.nodes[0].epoch == 2
    report = audit_run(cluster, ledger)
    assert report.ok, report.problems()


def test_arb_replay_completes_with_loss_and_duplication():
    """Ownership arbitrations pending at the crash are replayed to the
    surviving arbiters while loss/duplication stays active."""
    cluster = _faulty_cluster(seed=5)
    cluster.crash(3, at=3_000.0)
    run_zeus_workload(cluster, _counter_spec, duration_us=20_000.0,
                      threads=2, seed=5)
    cluster.run(until=200_000.0)

    replays = sum(h.ownership.counters.as_dict().get("arb_replay", 0)
                  for h in cluster.handles)
    assert replays > 0
    check_invariants(cluster)
    assert audit_liveness(cluster) == []


def test_crash_rejoin_cycle_with_loss_and_duplication():
    """The full crash→rejoin cycle — commit replay for the dead
    coordinator, ownership slow path while it is gone, then re-admission,
    state transfer and degree repair — all over a network that keeps
    losing, duplicating and reordering messages."""
    cluster = _faulty_cluster(seed=7)
    cluster.crash(3, at=5_000.0)
    cluster.recover(3, at=15_000.0)
    ledger = CommitLedger()

    def on_commit(node_id, spec, _result):
        ledger.record(node_id, spec.write_set)

    run_zeus_workload(cluster, _counter_spec, duration_us=25_000.0,
                      threads=2, seed=7, on_commit=on_commit)
    cluster.run(until=250_000.0)

    node = cluster.nodes[3]
    assert node.alive and node.incarnation == 2
    assert 3 in cluster.membership.view.live
    assert cluster.handles[3].recovery.counters.as_dict()["rejoins"] == 1
    report = audit_run(cluster, ledger)
    assert report.ok, report.problems()


# ======================================================================
# Membership: lost heartbeats vs real crashes
# ======================================================================

def test_membership_tolerates_lost_heartbeats_but_detects_crash():
    """Dropping every other heartbeat never reaches the 3-heartbeat
    silence threshold, so no view change; an actual crash still does."""
    cluster = make_cluster(3, fast_failover=True)
    cluster.start_membership()
    beats = {"sent": 0, "dropped": 0}

    def drop_every_other(node_id):
        if node_id != 1:
            return False
        beats["sent"] += 1
        if beats["sent"] % 2 == 0:
            beats["dropped"] += 1
            return True
        return False

    cluster.membership.heartbeat_drop_fn = drop_every_other
    cluster.run(until=50_000.0)
    assert beats["dropped"] > 50  # the hook really was losing heartbeats
    assert cluster.membership.view.epoch == 1
    assert cluster.membership.view.live == frozenset({0, 1, 2})

    cluster.crash(1)
    cluster.run(until=80_000.0)
    assert cluster.membership.view.epoch == 2
    assert 1 not in cluster.membership.view.live
    assert cluster.nodes[0].epoch == 2
