"""History recording, strict-serializability checking, and shrinking."""

import pytest

from repro.chaos import CampaignConfig, generate_schedule, run_chaos_once
from repro.chaos.schedule import CrashEvent, RecoverEvent, SlowdownEvent
from repro.obs.history import (
    ABORTED,
    COMMITTED,
    INDETERMINATE,
    NULL_HISTORY,
    HistoryOp,
    HistoryRecorder,
)
from repro.sim.kernel import Simulator
from repro.sim.process import Future
from repro.verify import ExplorerConfig, explore
from repro.verify.history import check_history
from repro.verify.shrink import ReproRecipe, run_recipe, shrink


# ------------------------------------------------------------------ recorder


def test_recorder_roundtrip():
    rec = HistoryRecorder()
    op = rec.begin(0, 1, "write", 10.0)
    rec.read(op, 7, 3, 11.0)
    rec.write(op, 7, 4, 12.0)
    rec.respond(op, True, 12.5)
    assert op.committed
    assert op.invoked_at == 10.0 and op.responded_at == 12.5
    assert op.reads == [(7, 3, 11.0)]
    assert op.writes == [(7, 4, 12.0)]
    assert rec.committed_ops() == [op]
    assert len(rec) == 1


def test_null_history_is_falsy_noop():
    assert not NULL_HISTORY
    assert NULL_HISTORY.begin(0, 0, "write", 0.0) is None
    NULL_HISTORY.respond(None, True, 1.0)   # must not raise
    NULL_HISTORY.on_crash(0, 1.0)
    assert NULL_HISTORY.committed_ops() == []
    assert len(NULL_HISTORY) == 0


def test_attach_durability_stamps_completion_time():
    sim = Simulator()
    rec = HistoryRecorder()
    op = rec.begin(0, 0, "write", 0.0)
    rec.respond(op, True, 1.0)
    fut = Future(sim)
    rec.attach_durability(op, fut)
    assert not op.durable
    sim.call_after(5.0, fut.set_result, None)
    sim.run()
    assert op.durable and op.durable_at == 5.0


def test_on_crash_downgrades_only_nondurable():
    rec = HistoryRecorder()
    durable = rec.begin(1, 0, "write", 0.0)
    rec.respond(durable, True, 1.0)
    rec.mark_durable(durable, 1.0)
    pending = rec.begin(1, 0, "write", 2.0)
    rec.respond(pending, True, 3.0)
    in_flight = rec.begin(1, 1, "write", 2.5)
    aborted = rec.begin(1, 1, "write", 2.6)
    rec.respond(aborted, False, 2.9)
    other_node = rec.begin(2, 0, "write", 2.7)
    rec.respond(other_node, True, 2.8)

    rec.on_crash(1, 4.0)
    assert durable.outcome == COMMITTED
    assert pending.outcome == INDETERMINATE
    assert in_flight.outcome == INDETERMINATE
    assert in_flight.responded_at == 4.0
    assert aborted.outcome == ABORTED
    assert other_node.outcome == COMMITTED


# ------------------------------------------------------------------- checker


def mk(op_id, inv, resp, reads=(), writes=(), outcome=COMMITTED,
       durable_at=None, kind="write"):
    op = HistoryOp(op_id, 0, 0, kind, inv)
    op.responded_at = resp
    op.reads = [(oid, ver, inv) for oid, ver in reads]
    op.writes = [(oid, ver, resp) for oid, ver in writes]
    op.outcome = outcome
    op.durable_at = durable_at
    return op


def test_clean_history_ok():
    ops = [mk(1, 0.0, 1.0, writes=[("x", 1)]),
           mk(2, 2.0, 3.0, reads=[("x", 1)], kind="read")]
    result = check_history(ops)
    assert result.ok
    assert result.committed == 2
    assert "vio=[]" in result.digest()


def test_lost_update_detected():
    ops = [mk(1, 0.0, 1.0, writes=[("x", 1)]),
           mk(2, 2.0, 3.0, writes=[("x", 1)])]
    result = check_history(ops)
    assert not result.ok
    v = result.violations[0]
    assert v.category == "lost-update"
    assert v.cycle == (1, 2)


def test_fractured_read_is_serializability_cycle():
    # T2 observes T1's write to y but not its (earlier-versioned) write
    # to x, with overlapping windows: a pure data-flow cycle, no rt edge.
    ops = [mk(1, 0.0, 10.0, writes=[("x", 1), ("y", 1)]),
           mk(2, 5.0, 8.0, reads=[("x", 0), ("y", 1)], kind="read")]
    result = check_history(ops)
    assert not result.ok
    v = result.violations[0]
    assert v.category == "serializability"
    assert set(v.cycle) == {1, 2}
    assert {k for _s, _d, k in v.edges} == {"wr", "rw"}


def test_stale_read_is_realtime_cycle():
    ops = [mk(1, 0.0, 1.0, writes=[("x", 1)]),
           mk(2, 5.0, 6.0, reads=[("x", 0)], kind="read")]
    result = check_history(ops)
    assert not result.ok
    v = result.violations[0]
    assert v.category == "realtime"
    assert set(v.cycle) == {1, 2}
    assert "rt" in {k for _s, _d, k in v.edges}


def test_early_ack_window_read_is_legal():
    # The write acked at t=1 but only became visible (replicated) at t=5:
    # a reader invoked inside the window may serialize before it...
    w = mk(1, 0.0, 1.0, writes=[("x", 1)], durable_at=5.0)
    r_inside = mk(2, 2.0, 3.0, reads=[("x", 0)], kind="read")
    assert check_history([w, r_inside]).ok
    # ...but a reader invoked after the visibility point may not.
    r_after = mk(3, 6.0, 7.0, reads=[("x", 0)], kind="read")
    result = check_history([w, r_after])
    assert not result.ok
    assert result.violations[0].category == "realtime"


def test_indeterminate_write_legal_seen_or_unseen():
    maybe = mk(1, 0.0, 1.0, writes=[("x", 1)], outcome=INDETERMINATE)
    seen = mk(2, 2.0, 3.0, reads=[("x", 1)], kind="read")
    unseen = mk(3, 4.0, 5.0, reads=[("x", 0)], kind="read")
    assert check_history([maybe, seen]).ok
    assert check_history([maybe, unseen]).ok
    result = check_history([maybe, seen, unseen])
    # Observing the crash fork and then not observing it again *is* a
    # non-repeatable-read shape, but neither reader alone violates.
    assert result.indeterminate == 1


def test_duplicate_version_with_indeterminate_is_crash_fork():
    maybe = mk(1, 0.0, 1.0, writes=[("x", 1)], outcome=INDETERMINATE)
    redo = mk(2, 2.0, 3.0, writes=[("x", 1)])
    assert check_history([maybe, redo]).ok


# ------------------------------------------- fault-injected runs stay clean


def test_explorer_histories_strictly_serializable():
    swept = explore(seeds=2, cfg=ExplorerConfig(txns_per_node=5))
    assert swept.seeds_run == 2
    assert swept.history_violations == []
    assert len(swept.history_digests) == 2
    assert not swept.violations and not swept.nonquiescent


def test_chaos_crash_recover_history_strictly_serializable():
    # The acceptance run: a difficulty-2 schedule (crash -> recover plus
    # partition/slowdown) with the history audit on must come back clean.
    cfg = CampaignConfig(difficulty=2, seeds=(0,), check_history=True,
                         duration_us=15_000.0, quiesce_us=25_000.0)
    schedule = generate_schedule(
        cfg.num_nodes, cfg.duration_us, seed=cfg.schedule_seed_base,
        difficulty=cfg.difficulty, require_crash=True)
    report = run_chaos_once(schedule, cfg.seeds[0], cfg)
    assert any(t.startswith("crash") for t in report.timeline)
    assert any(t.startswith("recover") for t in report.timeline)
    assert report.audit.history == []
    assert report.ok, report.audit.problems()


# ------------------------------------------------- broken commit + shrinker


BROKEN_EVENTS = (CrashEvent(3000.0, 1), RecoverEvent(15000.0, 1),
                 SlowdownEvent(500.0, 2, 3.0, 4000.0),
                 SlowdownEvent(8000.0, 0, 2.0, 9000.0))


def broken_recipe():
    return ReproRecipe(seed=1, num_nodes=3, num_objects=4, txns_per_node=8,
                       events=BROKEN_EVENTS, horizon_us=60_000.0,
                       broken_commit=True)


def test_healthy_recipe_passes():
    result = run_recipe(ReproRecipe(seed=1, num_nodes=3, num_objects=4,
                                    txns_per_node=8, horizon_us=60_000.0))
    assert result.ok


def test_broken_commit_caught_and_shrunk_to_half_or_less():
    recipe = broken_recipe()
    result = run_recipe(recipe)
    assert not result.ok
    assert any(v.category == "lost-update" for v in result.violations)

    sr = shrink(recipe, result)
    assert sr.events_after <= sr.events_before // 2
    assert sr.minimized.txns_per_node <= recipe.txns_per_node
    assert not sr.minimized_result.ok
    # The minimal recipe reproduces deterministically: re-running it
    # yields a byte-identical verdict.
    assert run_recipe(sr.minimized).digest() == sr.minimized_result.digest()


def test_shrink_refuses_passing_run():
    recipe = ReproRecipe(seed=1, num_nodes=3, num_objects=4,
                         txns_per_node=8, horizon_us=60_000.0)
    with pytest.raises(ValueError):
        shrink(recipe, run_recipe(recipe))


# ------------------------------------------------------- seed determinism


def test_explorer_digest_deterministic():
    cfg = ExplorerConfig(txns_per_node=4)
    first = explore(seeds=4, cfg=cfg).digest()
    second = explore(seeds=4, cfg=cfg).digest()
    assert first == second


def test_chaos_run_digest_deterministic():
    cfg = CampaignConfig(difficulty=1, seeds=(0,), check_history=True,
                         duration_us=6_000.0, quiesce_us=12_000.0)
    schedule = generate_schedule(
        cfg.num_nodes, cfg.duration_us, seed=cfg.schedule_seed_base,
        difficulty=cfg.difficulty, require_crash=True)
    first = run_chaos_once(schedule, 0, cfg)
    second = run_chaos_once(schedule, 0, cfg)
    assert first.digest() == second.digest()
    assert first.ok and second.ok
