"""Legacy setup shim: this environment is offline and has no `wheel`
package, so editable installs must go through `setup.py develop`."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Zeus: locality-aware distributed transactions (EuroSys 2021) — "
        "protocol-level reproduction on a deterministic discrete-event simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
